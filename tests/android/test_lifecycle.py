"""Lifecycle state machine (Figure 5's state graph)."""

from repro.android.lifecycle import (
    ACTIVITY_TRANSITIONS,
    EXPECTED_LIFECYCLE_HB,
    EXPECTED_LIFECYCLE_UNORDERED,
    LifecycleState,
    canonical_pairs_ordered,
    instance_label,
    lifecycle_callbacks_of,
    lifecycle_state_graph,
)
from repro.ir.builder import ProgramBuilder
from repro.android.framework import install_framework


class TestStateGraph:
    def test_all_states_reachable_from_init(self):
        g = lifecycle_state_graph()
        reachable = g.reachable_from("<init>")
        for state in (
            LifecycleState.CREATED,
            LifecycleState.STARTED,
            LifecycleState.RESUMED,
            LifecycleState.PAUSED,
            LifecycleState.STOPPED,
            LifecycleState.DESTROYED,
        ):
            assert state in reachable

    def test_destroyed_is_terminal(self):
        g = lifecycle_state_graph()
        assert g.successors(LifecycleState.DESTROYED) == []

    def test_pause_resume_cycle_exists(self):
        g = lifecycle_state_graph()
        assert g.has_edge(LifecycleState.RESUMED, LifecycleState.PAUSED)
        assert g.has_edge(LifecycleState.PAUSED, LifecycleState.RESUMED)

    def test_restart_cycle_exists(self):
        g = lifecycle_state_graph()
        assert g.has_edge(LifecycleState.STOPPED, LifecycleState.STARTED)

    def test_transition_callbacks_unique_per_edge(self):
        seen = set()
        for t in ACTIVITY_TRANSITIONS:
            key = (t.source, t.target)
            assert key not in seen
            seen.add(key)


class TestExpectations:
    def test_expected_hb_mentions_both_instances(self):
        callbacks = {cb for (cb, _i), _ in EXPECTED_LIFECYCLE_HB}
        assert "onCreate" in callbacks and "onPause" in callbacks
        instances = {i for pair in EXPECTED_LIFECYCLE_HB for (_, i) in pair}
        assert instances == {1, 2}

    def test_unordered_pairs_disjoint_from_ordered(self):
        ordered = set(EXPECTED_LIFECYCLE_HB)
        for pair in EXPECTED_LIFECYCLE_UNORDERED:
            assert pair not in ordered
            assert (pair[1], pair[0]) not in ordered

    def test_canonical_order_facts(self):
        facts = canonical_pairs_ordered()
        assert facts[("onCreate", "onDestroy")]
        assert facts[("onStart", "onPause")]
        assert ("onDestroy", "onCreate") not in facts


class TestHelpers:
    def test_instance_label(self):
        assert instance_label("onResume", 1) == "onResume"
        assert instance_label("onResume", 2) == 'onResume"2"'

    def test_lifecycle_callbacks_of_collects_inherited_app_chain(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        base = pb.new_class("t.BaseAct", superclass="android.app.Activity")
        base.method("onPause").ret()
        sub = pb.new_class("t.SubAct", superclass="t.BaseAct")
        sub.method("onCreate").ret()
        cbs = lifecycle_callbacks_of(pb.program, "t.SubAct")
        assert cbs == ["onCreate", "onPause"]

    def test_lifecycle_callbacks_in_canonical_order(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        act.method("onDestroy").ret()
        act.method("onCreate").ret()
        assert lifecycle_callbacks_of(pb.program, "t.A") == ["onCreate", "onDestroy"]

    def test_unknown_class_returns_empty(self):
        pb = ProgramBuilder()
        assert lifecycle_callbacks_of(pb.program, "no.Such") == []
