"""Vector clocks and dynamic happens-before."""

from repro.dynamic.scheduler import DynEvent, Trace
from repro.dynamic.vectorclock import TraceOrder, VectorClock, happens_before


def trace_of(parents_list):
    trace = Trace(seed=0)
    for i, parents in enumerate(parents_list):
        trace.events.append(
            DynEvent(id=i, label=f"e{i}", kind="t", thread="main", parents=tuple(parents))
        )
    return trace


class TestVectorClock:
    def test_join(self):
        a = VectorClock({0: 1})
        b = VectorClock({1: 2})
        j = VectorClock.join([a, b])
        assert j.components == {0: 1, 1: 2}

    def test_dominates(self):
        a = VectorClock({0: 1, 1: 1})
        b = VectorClock({0: 1})
        assert a.dominates(b)
        assert not b.dominates(a)


class TestTraceOrder:
    def test_chain(self):
        order = TraceOrder(trace_of([[], [0], [1]]))
        assert order.happens_before(0, 2)
        assert not order.happens_before(2, 0)
        assert not order.concurrent(0, 2)

    def test_independent_events_concurrent(self):
        order = TraceOrder(trace_of([[], []]))
        assert order.concurrent(0, 1)

    def test_diamond_join(self):
        order = TraceOrder(trace_of([[], [0], [0], [1, 2]]))
        assert order.happens_before(0, 3)
        assert order.happens_before(1, 3)
        assert order.concurrent(1, 2)

    def test_clocks_dominate_ancestors(self):
        trace = trace_of([[], [0], [1]])
        order = TraceOrder(trace)
        assert order.clocks[2].dominates(order.clocks[0])

    def test_helper_function(self):
        assert happens_before(trace_of([[], [0]]), 0, 1)

    def test_hb_is_irreflexive_and_antisymmetric(self):
        order = TraceOrder(trace_of([[], [0], [0, 1], [2]]))
        n = 4
        for a in range(n):
            assert not order.happens_before(a, a)
            for b in range(n):
                if a != b:
                    assert not (
                        order.happens_before(a, b) and order.happens_before(b, a)
                    )
