"""The schedule driver: determinism, lifecycle legality, FIFO looper."""

import pytest

from repro.dynamic.scheduler import ExecutionDriver, _LIFECYCLE_CHOICES


class TestDeterminism:
    def test_same_seed_same_trace(self, opensudoku_apk):
        t1 = ExecutionDriver(opensudoku_apk, seed=5, max_events=40).run()
        t2 = ExecutionDriver(opensudoku_apk, seed=5, max_events=40).run()
        assert [e.label for e in t1.events] == [e.label for e in t2.events]
        assert len(t1.accesses) == len(t2.accesses)

    def test_different_seeds_usually_differ(self, opensudoku_apk):
        labels = set()
        for seed in range(4):
            t = ExecutionDriver(opensudoku_apk, seed=seed, max_events=40).run()
            labels.add(tuple(e.label for e in t.events))
        assert len(labels) > 1


def full_lifecycle_apk():
    from repro.android import Apk, Manifest, install_framework
    from repro.ir.builder import ProgramBuilder

    pb = ProgramBuilder()
    install_framework(pb.program)
    act = pb.new_class("t.A", superclass="android.app.Activity")
    for cb in ("onCreate", "onStart", "onResume", "onPause", "onStop", "onRestart", "onDestroy"):
        act.method(cb).ret()
    apk = Apk("lc", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", is_main=True)
    return apk


class TestLifecycleLegality:
    @pytest.mark.parametrize("seed", range(5))
    def test_callback_order_respects_state_machine(self, seed):
        # every callback overridden, so the executed sequence IS the state
        # machine walk (no silently-skipped states)
        trace = ExecutionDriver(full_lifecycle_apk(), seed=seed, max_events=60).run()
        allowed_after = {
            "onCreate": {"onStart"},
            "onStart": {"onResume"},
            "onResume": {"onPause"},
            "onPause": {"onResume", "onStop"},
            "onStop": {"onRestart", "onDestroy"},
            "onRestart": {"onStart"},
            "onDestroy": set(),
        }
        lifecycle = [
            e.label.split(".")[-1]
            for e in trace.events
            if e.kind == "lifecycle"
        ]
        for prev, nxt in zip(lifecycle, lifecycle[1:]):
            assert nxt in allowed_after[prev], f"{prev} -> {nxt}"

    def test_oncreate_always_first_lifecycle(self, receiver_apk):
        trace = ExecutionDriver(receiver_apk, seed=1, max_events=40).run()
        lifecycle = [e for e in trace.events if e.kind == "lifecycle"]
        if lifecycle:
            assert lifecycle[0].label.endswith("onCreate")

    def test_lifecycle_choices_table_closed(self):
        states = set(_LIFECYCLE_CHOICES) | {"destroyed", "resumed", "created", "started", "paused", "stopped", "started-restart", "init"}
        for transitions in _LIFECYCLE_CHOICES.values():
            for _cb, next_state in transitions:
                assert next_state in states


class TestEventParents:
    def test_posted_message_parented_by_poster(self, opensudoku_apk):
        trace = ExecutionDriver(opensudoku_apk, seed=2, max_events=60).run()
        for event in trace.events:
            if event.kind == "message":
                assert event.parents, event
                for p in event.parents:
                    assert p < event.id  # parents precede children

    def test_async_post_parented_by_bg(self, newsreader_apk):
        for seed in range(6):
            trace = ExecutionDriver(newsreader_apk, seed=seed, max_events=80).run()
            posts = [e for e in trace.events if e.kind == "async-post"]
            if not posts:
                continue
            for post in posts:
                parents = [trace.event(p) for p in post.parents]
                assert any(p.kind == "async-bg" for p in parents)
            return
        pytest.skip("no schedule executed an AsyncTask completion")

    def test_bg_threads_get_distinct_thread_ids(self, newsreader_apk):
        trace = ExecutionDriver(newsreader_apk, seed=3, max_events=80).run()
        bg_threads = [e.thread for e in trace.events if e.thread != "main"]
        assert len(bg_threads) == len(set(bg_threads))


class TestCoverageKnob:
    def test_max_activities_limits_exploration(self, small_synth):
        apk, _ = small_synth
        trace = ExecutionDriver(apk, seed=0, max_events=60, max_activities=1).run()
        components = {e.label.split(".")[0] for e in trace.events if e.kind == "lifecycle"}
        assert components <= {"Activity0"}

    def test_max_events_bounds_trace(self, small_synth):
        apk, _ = small_synth
        trace = ExecutionDriver(apk, seed=0, max_events=10).run()
        assert len(trace.events) <= 10
