"""Value-level error handling in the interpreter's evaluators.

``_binop``/``_safe_cmp`` absorb only the exceptions app-level heap values
can legitimately produce (mixed-type arithmetic, bad comparisons). Anything
else is an interpreter bug and must propagate — the old bare
``except Exception`` made such bugs look like app behavior.
"""

from __future__ import annotations

import pytest

from repro.dynamic.interpreter import _binop, _safe_cmp
from repro.ir.instructions import BinOp, CmpOp


class _Poisoned:
    """A value whose operators raise a non-value error (a stand-in for an
    interpreter bug leaking through an operand)."""

    def __add__(self, other):
        raise MemoryError("interpreter bug")

    def __lt__(self, other):
        raise MemoryError("interpreter bug")

    def __eq__(self, other):
        raise MemoryError("interpreter bug")

    __hash__ = object.__hash__


class TestBinop:
    def test_mixed_types_evaluate_to_unknown(self):
        assert _binop(BinOp.ADD, "s", 1) is None
        assert _binop(BinOp.SUB, "s", "t") is None

    def test_none_operands_coerce(self):
        assert _binop(BinOp.ADD, None, 2) == 2
        assert _binop(BinOp.DIV, 4, None) == 4  # rhs None -> divides by 1

    def test_unexpected_exceptions_propagate(self):
        with pytest.raises(MemoryError, match="interpreter bug"):
            _binop(BinOp.ADD, _Poisoned(), 1)


class TestSafeCmp:
    def test_incomparable_types_compare_false(self):
        assert _safe_cmp(CmpOp.LT, "s", 1) is False

    def test_none_short_circuits_ordered_comparisons(self):
        assert _safe_cmp(CmpOp.GT, None, 1) is False
        assert _safe_cmp(CmpOp.EQ, None, None) is True

    def test_unexpected_exceptions_propagate(self):
        with pytest.raises(MemoryError, match="interpreter bug"):
            _safe_cmp(CmpOp.EQ, _Poisoned(), 1)
