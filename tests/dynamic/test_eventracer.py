"""EventRacer baseline: detection, coverage filter, §6.4 characteristics."""

from repro.core import Sierra, SierraOptions
from repro.dynamic import EventRacer, compare_with_static, run_eventracer


class TestDetection:
    def test_finds_quickstart_counter_race(self, quickstart_apk):
        report = run_eventracer(quickstart_apk, schedules=3, max_events=40)
        fields = {(r.base_class, r.field_name) for r in report.races}
        assert any(f == "counter" for _c, f in fields)

    def test_finds_figure1_races_eventually(self, newsreader_apk):
        report = run_eventracer(newsreader_apk, schedules=5, max_events=80)
        fields = {r.field_name for r in report.races}
        assert "data" in fields or "cachedCount" in fields

    def test_race_kinds(self, newsreader_apk):
        report = run_eventracer(newsreader_apk, schedules=5, max_events=80)
        kinds = {r.kind for r in report.races}
        assert kinds <= {"event", "data"}

    def test_report_deduplicates_across_schedules(self, quickstart_apk):
        report = run_eventracer(quickstart_apk, schedules=6, max_events=40)
        keys = [(r.base_class, r.field_name, r.labels) for r in report.races]
        assert len(keys) == len(set(keys))

    def test_detection_deterministic(self, opensudoku_apk):
        r1 = run_eventracer(opensudoku_apk, schedules=3, max_events=50, seed=9)
        r2 = run_eventracer(opensudoku_apk, schedules=3, max_events=50, seed=9)
        assert {x.describe() for x in r1.races} == {x.describe() for x in r2.races}


class TestRaceCoverageFilter:
    def test_primitive_guard_filtered(self, opensudoku_apk):
        """The mAccumTime accesses are both guarded by the primitive
        mIsRunning flag: EventRacer's coverage filter drops them."""
        report = run_eventracer(opensudoku_apk, schedules=4, max_events=60)
        fields = {r.field_name for r in report.races}
        assert "mAccumTime" not in fields
        assert report.filtered_by_coverage >= 1

    def test_pointer_guard_not_filtered(self, small_synth):
        """pdata_* accesses are guarded by a *pointer* null-check, which the
        coverage filter does not understand — reported (SIERRA refutes these:
        the 102-of-182 FP category of §6.4)."""
        apk, _ = small_synth
        report = run_eventracer(apk, schedules=6, max_events=120, max_activities=2)
        ptr = [r for r in report.races if r.field_name.startswith("pdata_")]
        if ptr:  # schedule-dependent; when seen it must carry the FP flag
            assert all(r.pointer_guarded for r in ptr)


class TestCoverageBlindness:
    def test_dynamic_misses_races_static_finds(self, small_synth):
        """The §6.4 headline: bounded exploration ⇒ far fewer true races."""
        apk, _ = small_synth
        static = Sierra(SierraOptions()).analyze(apk)
        dynamic = run_eventracer(apk, schedules=2, max_events=30, max_activities=1)
        assert dynamic.distinct_field_count() < static.report.races_after_refutation

    def test_compare_with_static_keys(self, quickstart_apk):
        static = Sierra(SierraOptions()).analyze(quickstart_apk)
        static_fields = {
            (getattr(p.location.base, "class_name", str(p.location.base)), p.field_name)
            for p in static.surviving
        }
        report = run_eventracer(quickstart_apk, schedules=3, max_events=40)
        comparison = compare_with_static(static_fields, report)
        assert comparison["static"] == len(static_fields)
        assert comparison["missed_by_dynamic"] >= 0


class TestUiOrderingWeakness:
    def test_ui_vs_lifecycle_report_possible(self, receiver_apk):
        """EventRacer does not order system events against later lifecycle
        callbacks — it reports onReceive vs onStop, like SIERRA, but also
        would report UI-after-stop pairs SIERRA rules out (exercised via
        the synthetic corpus in the Table 3 bench)."""
        report = run_eventracer(receiver_apk, schedules=5, max_events=80)
        labels = {l for r in report.races for l in r.labels}
        assert any("onReceive" in l for l in labels)
