"""Concrete interpreter: values, heap, dispatch, framework semantics."""

import random

from repro.android import Apk, Manifest, install_framework
from repro.dynamic.interpreter import Interpreter, RtObject
from repro.dynamic.scheduler import Runtime, Trace
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import BinOp, CmpOp
from repro.ir.types import INT, OBJECT


def make_rt(pb):
    apk = Apk("t", pb.build(), Manifest("t"))
    trace = Trace(seed=0)
    rt = Runtime(apk, random.Random(0), trace)
    rt.begin_event("test", "test", "main", ())
    return apk, rt, Interpreter(apk, rt)


def run(emit, params=(), args=(), receiver=None):
    pb = ProgramBuilder()
    install_framework(pb.program)
    mb = pb.new_class("t.C").method("m", params=params)
    emit(mb)
    apk, rt, interp = make_rt(pb)
    value = interp.run_method(mb.method, receiver or RtObject("t.C"), tuple(args))
    return value, rt


class TestValues:
    def test_arithmetic(self):
        def emit(b):
            b.const("x", 4)
            b.const("y", 3)
            b.binop("z", "x", BinOp.ADD, "y")
            b.binop("w", "z", BinOp.MUL, 2)
            b.ret("w")

        value, _ = run(emit)
        assert value == 14

    def test_compare_and_branch(self):
        def emit(b):
            b.const("x", 5)
            b.if_(lhs="x", op=CmpOp.GT, rhs=3, target="big")
            b.const("r", 0)
            b.ret("r")
            b.label("big").const("r", 1)
            b.ret("r")

        value, _ = run(emit)
        assert value == 1

    def test_loop_terminates_and_counts(self):
        def emit(b):
            b.const("i", 0)
            b.label("head").cmp("done", "i", CmpOp.GE, 3)
            b.if_true("done", "end")
            b.binop("i", "i", BinOp.ADD, 1)
            b.goto("head")
            b.label("end").ret("i")

        value, _ = run(emit)
        assert value == 3

    def test_runaway_loop_cut_off(self):
        def emit(b):
            b.label("head").goto("head")

        value, _ = run(emit)  # must return, not hang
        assert value is None

    def test_division_by_zero_is_safe(self):
        def emit(b):
            b.const("x", 1)
            b.binop("y", "x", BinOp.DIV, 0)
            b.ret("y")

        value, _ = run(emit)
        assert value == 1  # divisor defaulted to 1


class TestHeap:
    def test_field_roundtrip_records_accesses(self):
        def emit(b):
            b.new("o", "t.C")
            b.const("v", 9)
            b.store("o", "f", "v")
            b.load("w", "o", "f")
            b.ret("w")

        value, rt = run(emit)
        assert value == 9
        kinds = [(a.kind, a.field_name) for a in rt.trace.accesses]
        assert ("write", "f") in kinds and ("read", "f") in kinds

    def test_static_roundtrip(self):
        def emit(b):
            b.const("v", 5)
            b.sstore("t.C", "g", "v")
            b.sload("w", "t.C", "g")
            b.ret("w")

        value, rt = run(emit)
        assert value == 5

    def test_null_dereference_logged_not_crashing(self):
        def emit(b):
            b.const("p", None)
            b.load("w", "p", "f")
            b.ret("w")

        value, rt = run(emit)
        assert value is None
        assert any("NullPointerException" in e[2] for e in rt.trace.exceptions)

    def test_array_cells(self):
        def emit(b):
            b.new("arr", "t.C")
            b.astore("arr", 0, 7)
            b.aload("w", "arr", 3)
            b.ret("w")

        value, _ = run(emit)
        assert value == 7  # index-insensitive model


class TestDispatch:
    def test_virtual_dispatch_to_override(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        base = pb.new_class("t.Base")
        bm = base.method("who")
        bm.const("r", 1)
        bm.ret("r")
        sub = pb.new_class("t.Sub", superclass="t.Base")
        sm = sub.method("who")
        sm.const("r", 2)
        sm.ret("r")
        caller = pb.new_class("t.Main").method("m")
        caller.new("o", "t.Sub")
        caller.call("o", "who", dst="r")
        caller.ret("r")
        apk, rt, interp = make_rt(pb)
        value = interp.run_method(caller.method, RtObject("t.Main"))
        assert value == 2

    def test_parameter_passing(self):
        def emit(b):
            b.ret("x")

        value, _ = run(emit, params=[("x", INT)], args=(42,))
        assert value == 42

    def test_unbound_params_default_none(self):
        def emit(b):
            b.ret("x")

        value, _ = run(emit, params=[("x", OBJECT)])
        assert value is None


class TestFrameworkSemantics:
    def test_find_view_by_id_singleton(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        mb = act.method("m")
        mb.call("this", "findViewById", 7, dst="v1")
        mb.call("this", "findViewById", 7, dst="v2")
        mb.cmp("same", "v1", CmpOp.EQ, "v2")
        mb.ret("same")
        apk, rt, interp = make_rt(pb)
        assert interp.run_method(mb.method, RtObject("t.A")) is True

    def test_post_enqueues_to_main_queue(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        r.method("run").ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("h", "android.os.Handler")
        mb.new("r", "t.R")
        mb.call("h", "post", "r")
        mb.ret()
        apk, rt, interp = make_rt(pb)
        interp.run_method(mb.method, RtObject("t.C"))
        assert len(rt.main_queue) == 1
        assert rt.main_queue[0].method.signature == "t.R.run"

    def test_thread_start_spawns_bg_task(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        t = pb.new_class("t.T", superclass="java.lang.Thread")
        t.method("run").ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("t", "t.T")
        mb.call("t", "start")
        mb.ret()
        apk, rt, interp = make_rt(pb)
        interp.run_method(mb.method, RtObject("t.C"))
        assert len(rt.bg_tasks) == 1

    def test_listener_registration_recorded(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        listener = pb.new_class("t.L", interfaces=("android.view.View.OnClickListener",))
        listener.method("onClick").ret()
        mb = pb.new_class("t.A", superclass="android.app.Activity").method("m")
        mb.call("this", "findViewById", 3, dst="v")
        mb.new("l", "t.L")
        mb.call("v", "setOnClickListener", "l")
        mb.ret()
        apk, rt, interp = make_rt(pb)
        interp.run_method(mb.method, RtObject("t.A"))
        assert len(rt.registrations) == 1
        assert rt.registrations[0].callback_methods == ("onClick",)

    def test_unregister_removes(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        recv = pb.new_class("t.R", superclass="android.content.BroadcastReceiver")
        recv.method("onReceive").ret()
        mb = pb.new_class("t.A", superclass="android.app.Activity").method("m")
        mb.new("r", "t.R")
        mb.call("this", "registerReceiver", "r")
        mb.call("this", "unregisterReceiver", "r")
        mb.ret()
        apk, rt, interp = make_rt(pb)
        interp.run_method(mb.method, RtObject("t.A"))
        assert rt.registrations == []
