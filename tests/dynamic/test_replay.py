"""Replay-based verification of static candidates (§6.4's combination)."""

from repro.core import Sierra, SierraOptions
from repro.dynamic import (
    BENIGN,
    HARMFUL,
    ReplayVerifier,
    UNCONFIRMED,
    verify_candidates,
)


class TestQuickstartLostUpdate:
    def test_counter_race_verified_harmful(self, quickstart_apk, quickstart_result):
        report = verify_candidates(
            quickstart_apk, quickstart_result, schedules=30, max_events=50
        )
        (verdict,) = report.verdicts
        assert verdict.status == HARMFUL  # 1-vs-0 final value: lost update
        assert verdict.order_ab is not None and verdict.order_ba is not None
        assert verdict.order_ab.diverges_from(verdict.order_ba)


class TestGuardRacesBenign:
    def test_guard_variable_races_commute(self, opensudoku_apk, opensudoku_result):
        report = verify_candidates(
            opensudoku_apk, opensudoku_result, schedules=30, max_events=60
        )
        statuses = {
            v.pair.field_name: v.status
            for v in report.verdicts
            if v.status != UNCONFIRMED
        }
        # whenever a guard race is witnessed in both orders it is benign
        assert statuses.get("mIsRunning") in (None, BENIGN)
        assert HARMFUL not in {
            v.status for v in report.verdicts if v.pair.field_name == "mIsRunning"
        }


class TestCoverageLimits:
    def test_zero_schedules_everything_unconfirmed(
        self, quickstart_apk, quickstart_result
    ):
        report = verify_candidates(
            quickstart_apk, quickstart_result, schedules=0
        )
        assert all(v.status == UNCONFIRMED for v in report.verdicts)

    def test_counts_partition(self, opensudoku_apk, opensudoku_result):
        report = verify_candidates(
            opensudoku_apk, opensudoku_result, schedules=10, max_events=40
        )
        counts = report.counts()
        assert sum(counts.values()) == len(report.verdicts) == len(
            opensudoku_result.surviving
        )

    def test_verifier_traces_cached(self, quickstart_apk, quickstart_result):
        verifier = ReplayVerifier(quickstart_apk, schedules=5, max_events=30)
        verifier.verify_all(quickstart_result)
        traces = verifier._all_traces()
        assert traces is verifier._all_traces()  # reused, not regenerated

    def test_deterministic(self, quickstart_apk, quickstart_result):
        r1 = verify_candidates(quickstart_apk, quickstart_result, schedules=8, seed=3)
        r2 = verify_candidates(quickstart_apk, quickstart_result, schedules=8, seed=3)
        assert [v.status for v in r1.verdicts] == [v.status for v in r2.verdicts]


class TestOutcomeSemantics:
    def test_divergence_on_exception_difference(self):
        from repro.dynamic.replay import OrderOutcome

        quiet = OrderOutcome(0, "a", "b", (), 1)
        crashing = OrderOutcome(1, "b", "a", ("NullPointerException",), 1)
        assert quiet.diverges_from(crashing)

    def test_divergence_on_final_value(self):
        from repro.dynamic.replay import OrderOutcome

        one = OrderOutcome(0, "a", "b", (), 1)
        two = OrderOutcome(1, "b", "a", (), 2)
        assert one.diverges_from(two)
        assert not one.diverges_from(OrderOutcome(2, "b", "a", (), 1))
