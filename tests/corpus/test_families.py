"""Seeded app families: determinism, ground truth, recall on injected races."""

from __future__ import annotations

import dataclasses

import pytest

from repro.corpus.families import (
    FAMILY_NAMES,
    MAX_SIZE,
    corpus_manifest,
    estimate_cost,
    family_app_name,
    family_ground_truth,
    family_spec,
    parse_family_name,
    score_detection,
    seeded_corpus,
    synthesize_family_app,
)
from repro.corpus.synth import ELIMINATED_CATEGORIES, TRUE_CATEGORIES


def _detected_fields(name):
    from repro.core import Sierra, SierraOptions

    apk, _ = synthesize_family_app(name)
    result = Sierra(SierraOptions()).analyze(apk)
    return {report.field_name for report in result.report.reports}


class TestGroundTruthRecall:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_small_member_recall_is_one(self, family):
        """Every injected race in a size-0 member must be detected — the
        recall denominator the bench gate tracks is only meaningful if a
        healthy detector scores 1.0 on it."""
        name = family_app_name(family, size=0, seed=7)
        truth = family_ground_truth(name)
        expected = truth.true_fields()
        assert expected, f"family {family!r} injects no true races"
        detected = _detected_fields(name)
        score = score_detection(truth, detected)
        assert score["recall"] == 1.0
        assert score["missed"] == []
        # refuted/ordered/factory plants must not leak through either
        assert score["leaked_eliminated"] == []

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_manifest_categories_are_known(self, family):
        truth = family_ground_truth(family_app_name(family, 1, 3))
        for field, category in truth.fields.items():
            assert category in TRUE_CATEGORIES | ELIMINATED_CATEGORIES | {
                "fp-implicit"
            }, (field, category)


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_same_seed_same_spec(self, family):
        a = family_spec(family, size=1, seed=42)
        b = family_spec(family, size=1, seed=42)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_same_seed_byte_identical_app(self):
        name = family_app_name("mesh", 0, 11)
        apk_a, truth_a = synthesize_family_app(name)
        apk_b, truth_b = synthesize_family_app(name)
        assert sorted(apk_a.program.classes) == sorted(apk_b.program.classes)
        assert truth_a.to_dict() == truth_b.to_dict()

    def test_seeded_corpus_is_reproducible(self):
        a = seeded_corpus(count=40, seed=5)
        b = seeded_corpus(count=40, seed=5)
        assert a == b
        assert len(a) == 40
        # round-robin keeps all families represented
        families = {parse_family_name(n)[0] for n in a}
        assert families == set(FAMILY_NAMES)

    def test_different_seed_different_members(self):
        assert seeded_corpus(count=10, seed=1) != seeded_corpus(count=10, seed=2)


class TestNaming:
    def test_round_trip(self):
        name = family_app_name("looper", 2, 99)
        assert name == "family:looper:2:99"
        assert parse_family_name(name) == ("looper", 2, 99)

    @pytest.mark.parametrize(
        "bad",
        [
            "family:nope:0:0",          # unknown family
            "family:mesh:9:0",          # size out of range
            "family:mesh:0",            # missing seed
            "family:mesh:x:0",          # non-int size
            "quickstart",               # not a family name at all
        ],
    )
    def test_bad_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_family_name(bad)

    def test_unknown_family_spec_raises(self):
        with pytest.raises(ValueError, match="unknown family"):
            family_spec("nope")
        with pytest.raises(ValueError, match="size"):
            family_spec("mesh", size=MAX_SIZE + 1)


class TestManifestAndCost:
    def test_manifest_schema(self):
        names = seeded_corpus(count=5, seed=0, max_size=1)
        manifest = corpus_manifest(names)
        assert manifest["schema"] == 1
        assert manifest["count"] == 5
        assert set(manifest["apps"]) == set(names)
        for entry in manifest["apps"].values():
            assert set(entry) >= {"app", "seeded", "fields", "true_fields"}
            assert set(entry["true_fields"]) <= set(entry["fields"])

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_cost_grows_with_size(self, family):
        costs = [
            estimate_cost(family_app_name(family, size, 0))
            for size in range(MAX_SIZE + 1)
        ]
        assert costs == sorted(costs)
        # the size knob really spans orders of magnitude
        assert costs[-1] > 50 * costs[0]

    def test_cost_covers_every_corpus_shape(self):
        assert estimate_cost("paper:apv") > 0
        assert estimate_cost("fdroid:0") > 0
        assert estimate_cost("quickstart") > 0
