"""The 174-app F-Droid-style corpus: stability and sanity."""

from repro.corpus import FDROID_APP_COUNT, fdroid_spec, fdroid_specs, generate_fdroid_corpus, synthesize_app


class TestSpecs:
    def test_full_population_size(self):
        assert len(fdroid_specs()) == FDROID_APP_COUNT == 174

    def test_specs_deterministic(self):
        assert fdroid_spec(17) == fdroid_spec(17)

    def test_names_unique(self):
        names = [s.name for s in fdroid_specs()]
        assert len(names) == len(set(names))

    def test_size_distribution_is_skewed(self):
        acts = sorted(s.activities for s in fdroid_specs())
        median = acts[len(acts) // 2]
        assert 2 <= median <= 8  # paper: 4.5 harnesses median
        assert acts[-1] > 2 * median  # fat tail


class TestGeneration:
    def test_sampled_apps_validate(self):
        for index in (0, 41, 99, 173):
            apk, truth = synthesize_app(fdroid_spec(index))
            report = apk.validate()
            assert report.ok, (index, report.errors[:3])
            assert truth.expected_true_fields() >= 1

    def test_lazy_corpus_iteration(self):
        gen = generate_fdroid_corpus(3)
        apks = [apk for apk, _ in gen]
        assert len(apks) == 3
        assert all(a.metadata.category == "fdroid" for a in apks)
