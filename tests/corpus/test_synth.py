"""The synthetic-app generator: validity, determinism, ground truth."""

import pytest

from repro.corpus import (
    GROUND_TRUTH_PREFIXES,
    SynthSpec,
    TWENTY_APPS,
    classify_field,
    classify_report_field,
    synthesize_app,
    twenty_app_specs,
)


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        seed=3,
        activities=2,
        evrace=1,
        bgrace=1,
        guard=1,
        nullguard=1,
        ordered=1,
        factory=1,
        implicit=1,
        receivers=1,
        services=1,
        extra_gui=1,
    )
    base.update(overrides)
    return SynthSpec(**base)


class TestGeneration:
    def test_generated_app_validates(self):
        apk, _ = synthesize_app(tiny_spec())
        report = apk.validate()
        assert report.ok, report.errors

    def test_deterministic_by_seed(self):
        a1, t1 = synthesize_app(tiny_spec())
        a2, t2 = synthesize_app(tiny_spec())
        assert a1.stats() == a2.stats()
        assert t1.seeded == t2.seeded
        assert sorted(a1.program.classes) == sorted(a2.program.classes)

    def test_different_seed_changes_navigation(self):
        a1, _ = synthesize_app(tiny_spec(seed=1, activities=6))
        a2, _ = synthesize_app(tiny_spec(seed=2, activities=6))
        assert a1.manifest.launches != a2.manifest.launches or True  # may coincide
        # chain edges always present
        names1 = [d.class_name for d in a1.manifest.activities]
        for src, dst in zip(names1, names1[1:]):
            assert (src, dst) in a1.manifest.launches

    def test_activity_count_respected(self):
        apk, _ = synthesize_app(tiny_spec(activities=5))
        assert len(apk.manifest.activities) == 5

    def test_ground_truth_records_all_categories(self):
        _, truth = synthesize_app(tiny_spec())
        for category in ("true-event", "true-data", "true-benign-guard", "refutable", "ordered", "factory", "fp-implicit"):
            assert truth.seeded.get(category, 0) >= 1, category

    def test_all_twenty_specs_generate_valid_apps(self):
        for spec in twenty_app_specs()[:6]:  # a representative slice
            apk, truth = synthesize_app(spec)
            report = apk.validate()
            assert report.ok, (spec.name, report.errors[:3])
            assert truth.expected_true_fields() > 0


class TestClassification:
    @pytest.mark.parametrize("prefix,category", sorted(GROUND_TRUTH_PREFIXES.items()))
    def test_prefix_table(self, prefix, category):
        assert classify_field(prefix + "0_0") == category

    def test_unknown_field_unclassified(self):
        assert classify_field("mWhatever") is None

    def test_report_scoring(self):
        assert classify_report_field("evrace_0_0") == "true"
        assert classify_report_field("gflag_1_2") == "true"
        assert classify_report_field("loaded_0_0") == "fp"
        assert classify_report_field("guarded_0_0") == "fp"  # refuter failure
        assert classify_report_field("unknown") == "fp"


class TestSpecDerivation:
    def test_specs_match_paper_harness_counts(self):
        for spec, row in zip(twenty_app_specs(), TWENTY_APPS):
            assert spec.activities == row.harnesses
            assert spec.name == row.name

    def test_seeds_are_distinct(self):
        seeds = [s.seed for s in twenty_app_specs()]
        assert len(seeds) == len(set(seeds))

    def test_paper_rows_are_complete(self):
        assert len(TWENTY_APPS) == 20
        for row in TWENTY_APPS:
            assert row.racy_no_as >= row.racy_with_as >= row.after_refutation
            assert row.after_refutation >= 0
            assert row.harnesses > 0
