"""Sharded work-stealing scheduler: binpacking, core budget, equivalence."""

from __future__ import annotations

import dataclasses
import io
import multiprocessing

import pytest

from repro import obs
from repro.core import SierraOptions
from repro.corpus import scheduler as sched
from repro.corpus.driver import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    run_corpus,
)
from repro.corpus.families import (
    aggregate_scores,
    family_ground_truth,
    score_detection,
    seeded_corpus,
)


def _item(index: int, cost: float, **kw) -> sched.WorkItem:
    return sched.WorkItem(index=index, name=f"app{index}", cost=cost, **kw)


class TestCoreBudget:
    def test_divides_cores_across_shards(self):
        assert sched.core_budget(4, requested=8, cores=8) == 2
        assert sched.core_budget(2, requested=8, cores=8) == 4

    def test_never_raises_the_request(self):
        assert sched.core_budget(2, requested=1, cores=8) == 1
        assert sched.core_budget(1, requested=3, cores=16) == 3

    def test_more_shards_than_cores_degrades_to_one(self):
        assert sched.core_budget(8, requested=4, cores=4) == 1
        assert sched.core_budget(3, requested=2, cores=2) == 1

    def test_single_shard_keeps_full_budget(self):
        assert sched.core_budget(1, requested=4, cores=4) == 4


class TestWorkPlan:
    def test_lpt_binpacking_largest_first_into_least_loaded(self):
        plan = sched.WorkPlan(
            [_item(0, 10.0), _item(1, 9.0), _item(2, 2.0), _item(3, 1.0)],
            shards=2,
        )
        assert [it.cost for it in plan.bins[0]] == [10.0, 1.0]
        assert [it.cost for it in plan.bins[1]] == [9.0, 2.0]
        assert plan.load_of(0) == 11.0 and plan.load_of(1) == 11.0

    def test_take_serves_own_head_largest_first(self):
        plan = sched.WorkPlan([_item(0, 10.0), _item(1, 4.0)], shards=1)
        item, stolen_from = plan.take(0)
        assert item.cost == 10.0 and stolen_from is None

    def test_idle_shard_steals_victims_cheapest_tail(self):
        plan = sched.WorkPlan(
            [_item(0, 10.0), _item(1, 4.0), _item(2, 3.0)], shards=2
        )
        assert [it.cost for it in plan.bins[1]] == [4.0, 3.0]
        item, _ = plan.take(0)  # drains shard 0's only item
        assert item.cost == 10.0
        item, stolen_from = plan.take(0)
        assert stolen_from == 1
        assert item.cost == 3.0  # tail of the victim, not its head
        assert plan.steals == 1

    def test_equal_costs_tie_break_on_index(self):
        a = sched.WorkPlan([_item(i, 1.0) for i in range(6)], shards=3)
        b = sched.WorkPlan([_item(i, 1.0) for i in range(6)], shards=3)
        assert [[it.index for it in bin_] for bin_ in a.bins] == [
            [it.index for it in bin_] for bin_ in b.bins
        ]

    def test_drained_plan_returns_none(self):
        plan = sched.WorkPlan([_item(0, 1.0)], shards=2)
        assert plan.take(0) is not None
        assert plan.take(0) is None and plan.take(1) is None
        assert plan.remaining() == 0


class TestProgressLine:
    def test_renders_done_rate_and_running_apps(self):
        stream = io.StringIO()
        line = sched.ProgressLine(total=2, total_cost=2.0, stream=stream)
        line.start(0, "alpha")
        assert "running: alpha" in stream.getvalue()
        line.finish(0, "alpha", 1.0)
        assert "[1/2]" in stream.getvalue()
        assert "apps/s" in stream.getvalue()
        line.close()
        assert stream.getvalue().endswith("\n")


class TestRunShardedDirect:
    def _options(self):
        return dataclasses.asdict(SierraOptions())

    def test_worker_crash_respawns_and_isolates(self):
        """A worker that dies mid-task costs exactly that task — the
        replacement worker drains the rest of the plan."""
        mp_context = multiprocessing.get_context("fork")
        items = [
            sched.WorkItem(index=0, name="quickstart", cost=2.0),
            sched.WorkItem(
                index=1, name="quickstart", cost=2.0, inject_crash=True
            ),
            sched.WorkItem(index=2, name="quickstart", cost=2.0),
        ]
        records = sched.run_sharded(
            mp_context, items, self._options(), shards=2, timeout_s=60.0
        )
        assert [r.status for r in records] == [
            STATUS_OK,
            STATUS_ERROR,
            STATUS_OK,
        ]
        assert records[1].error["type"] == "WorkerDied"

    def test_records_return_in_input_order(self):
        mp_context = multiprocessing.get_context("fork")
        names = seeded_corpus(count=4, seed=1, max_size=0)
        items = [
            sched.WorkItem(index=i, name=n, cost=float(4 - i))
            for i, n in enumerate(names)
        ]
        records = sched.run_sharded(
            mp_context, items, self._options(), shards=2, timeout_s=60.0
        )
        assert [r.app for r in records] == names


class TestDriverIntegration:
    def test_core_budget_lands_in_the_report(self):
        apps = seeded_corpus(count=2, seed=0, max_size=0)
        run = run_corpus(
            apps=apps, shards=2, options=SierraOptions(parallelism=4)
        )
        assert run.shards == 2
        assert run.effective_parallelism == sched.core_budget(2, requested=4)
        data = run.to_dict()
        assert data["shards"] == 2
        assert data["effective_parallelism"] == run.effective_parallelism
        assert all(r.status == STATUS_OK for r in run.records)

    def test_shard_events_reach_parent_hooks(self):
        kinds = []
        hook = lambda event: kinds.append(event.kind)  # noqa: E731
        obs.add_hook(hook)
        try:
            run_corpus(apps=seeded_corpus(count=2, seed=4, max_size=0), shards=2)
        finally:
            obs.remove_hook(hook)
        assert kinds.count(sched.EVENT_SHARD_START) == 2
        assert kinds.count(sched.EVENT_SHARD_FINISH) == 2

    def test_gauges_zeroed_after_run(self):
        from repro.obs import metrics

        run_corpus(apps=seeded_corpus(count=2, seed=4, max_size=0), shards=2)
        assert metrics.registry().value("corpus.queue_depth") == 0
        assert metrics.registry().value("corpus.busy_workers") == 0


def _result_key(run):
    return {
        r.app: (
            r.status,
            frozenset((row["fingerprint"], row["verdict"]) for row in r.races),
        )
        for r in run.records
    }


@pytest.mark.corpus_smoke
class TestShardedEquivalence:
    def test_family_mix_sharded_equals_serial_with_full_recall(self):
        """The CI smoke: a seeded 24-app family mix through the sharded
        scheduler must match the serial run fingerprint-for-fingerprint
        and keep recall 1.0 on every injected race."""
        apps = seeded_corpus(count=24, seed=9, max_size=1)
        serial = run_corpus(apps=apps, timeout_s=120.0)
        sharded = run_corpus(apps=apps, shards=3, timeout_s=120.0)
        assert _result_key(sharded) == _result_key(serial)
        assert [r.app for r in sharded.records] == apps
        assert sharded.shards == 3 and serial.shards == 1
        scores = [
            score_detection(
                family_ground_truth(r.app), [row["field"] for row in r.races]
            )
            for r in sharded.records
        ]
        agg = aggregate_scores(scores)
        assert agg["recall"] == 1.0
        assert all(s["leaked_eliminated"] == [] for s in scores)

    def test_fault_injection_semantics_survive_sharding(self):
        apps = seeded_corpus(count=4, seed=2, max_size=0) + ["quickstart"]
        run = run_corpus(
            apps=apps,
            shards=3,
            inject_fail=["quickstart"],
            inject_hang=[apps[0]],
            timeout_s=2.0,
        )
        statuses = {r.app: r.status for r in run.records}
        assert statuses["quickstart"] == STATUS_ERROR
        assert statuses[apps[0]] == STATUS_TIMEOUT
        assert all(
            statuses[a] == STATUS_OK for a in apps[1:4]
        ), statuses
        assert run.exit_code == 1
        hung = next(r for r in run.records if r.app == apps[0])
        assert hung.error["stuck_stage"] == "inject-hang"
