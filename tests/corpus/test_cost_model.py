"""Calibrated cost model: fitting, blending, cold-ledger fallback, and
the scheduler feedback loop through ``run_corpus``."""

from __future__ import annotations

import json

import pytest

from repro.corpus.driver import run_corpus
from repro.corpus.families import estimate_cost
from repro.corpus.specs import DEFAULT_BLEND, CalibratedCostModel
from repro.obs.history import KIND_ANALYZE, RunLedger

#: small, fast family apps with prior-observable names
APPS = [
    "family:mesh:0:1",
    "family:storm:0:1",
    "family:lifecycle:1:1",
    "family:chain:0:2",
]


class TestFit:
    def test_median_ratio_scale_and_blend(self):
        model = CalibratedCostModel.fit(
            observed_s={"a": 2.0, "b": 4.0}, static_costs={"a": 1000.0, "b": 2000.0}
        )
        assert model.calibrated
        assert model.scale_s_per_cost == pytest.approx(0.002)
        # both apps sit exactly on the fitted line, so blending observed
        # with static returns the static cost unchanged
        assert model.cost("a", 1000.0) == pytest.approx(1000.0)
        assert model.predict_seconds("a", 1000.0) == pytest.approx(2.0)

    def test_blend_weights_observed_versus_static(self):
        # observed says "a" is 2x its static estimate
        observed = {"a": 4.0, "b": 2.0}
        static = {"a": 2000.0, "b": 2000.0}
        pure_observed = CalibratedCostModel.fit(observed, static, blend=1.0)
        scale = pure_observed.scale_s_per_cost
        assert pure_observed.cost("a", 2000.0) == pytest.approx(4.0 / scale)
        default = CalibratedCostModel.fit(observed, static)
        expected = DEFAULT_BLEND * (4.0 / scale) + (1 - DEFAULT_BLEND) * 2000.0
        assert default.cost("a", 2000.0) == pytest.approx(expected)

    def test_unknown_app_falls_back_to_static(self):
        model = CalibratedCostModel.fit({"a": 2.0}, {"a": 1000.0})
        assert not model.knows("zzz")
        assert model.cost("zzz", 777.0) == 777.0

    def test_median_is_robust_to_a_timeout_outlier(self):
        observed = {"a": 1.0, "b": 2.0, "c": 500.0}  # c hung near a timeout
        static = {"a": 1000.0, "b": 2000.0, "c": 1000.0}
        model = CalibratedCostModel.fit(observed, static)
        assert model.scale_s_per_cost == pytest.approx(0.001)

    def test_empty_fit_is_uncalibrated(self):
        model = CalibratedCostModel.fit({}, {})
        assert not model.calibrated
        assert model.cost("a", 42.0) == 42.0
        assert model.predict_seconds("a", 42.0) is None


class TestRecentAppCosts:
    def test_newest_wins_and_failures_are_skipped(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run1 = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run1, "app-a", "ok", elapsed_s=5.0)
            ledger.record_app(run1, "app-b", "error", elapsed_s=9.0)
            run2 = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run2, "app-a", "ok", elapsed_s=3.0)
            ledger.record_app(run2, "app-c", "degraded", elapsed_s=1.5)
            ledger.record_app(run2, "*", "ok", elapsed_s=99.0)  # aggregate row
            ledger.record_app(run2, "app-d", "ok", elapsed_s=0.0)  # no signal
            observed = ledger.recent_app_costs()
        assert observed == {"app-a": 3.0, "app-c": 1.5}

    def test_cold_ledger_yields_uncalibrated_model(self, tmp_path):
        db = str(tmp_path / "cold.db")
        with RunLedger(db) as ledger:
            model = CalibratedCostModel.from_ledger(ledger, estimate_cost)
        assert not model.calibrated
        # scheduler falls back to the static estimate, unchanged
        assert model.cost("family:mesh:0:1", 123.0) == 123.0


@pytest.mark.corpus_smoke
class TestSchedulerFeedbackLoop:
    def test_second_run_is_calibrated_and_reports_prediction_error(self, tmp_path):
        db = str(tmp_path / "costs.db")
        out1 = tmp_path / "run1.json"
        out2 = tmp_path / "run2.json"
        first = run_corpus(APPS, history=db, shards=2, isolate=False,
                           out_path=str(out1))
        assert all(r.status == "ok" for r in first.records)
        # cold ledger: no calibration block, static costs only
        assert first.cost_model is None

        second = run_corpus(APPS, history=db, shards=2, isolate=False,
                            out_path=str(out2))
        block = second.cost_model
        assert block is not None
        assert block["calibrated_apps"] == len(APPS)
        assert block["scale_s_per_cost"] > 0.0
        assert block["blend"] == DEFAULT_BLEND
        assert block["predictions"] == len(APPS)
        assert block["mean_abs_rel_err"] >= 0.0
        # the block survives the JSON report round-trip
        report = json.loads(out2.read_text())
        assert report["cost_model"]["calibrated_apps"] == len(APPS)

    def test_prediction_error_histogram_is_minted(self, tmp_path):
        from repro.obs import metrics

        db = str(tmp_path / "hist.db")
        run_corpus(APPS[:2], history=db, isolate=False)
        run_corpus(APPS[:2], history=db, isolate=False)
        collected = metrics.registry().collect()
        entry = collected.get("corpus.cost_model.predicted_vs_actual")
        assert entry is not None and entry["type"] == "histogram"
        assert entry["count"] == 2
