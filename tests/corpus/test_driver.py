"""The fault-isolated corpus driver: statuses, report schema, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import is_known_app, main
from repro.corpus.driver import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    default_corpus,
    run_corpus,
)

#: fast apps: the whole file's batches stay in the low seconds
SMALL = ["quickstart", "dbapp"]


def _statuses(run):
    return {r.app: r.status for r in run.records}


class TestCleanRun:
    def test_all_ok_and_exit_zero(self):
        run = run_corpus(apps=SMALL)
        assert _statuses(run) == {name: STATUS_OK for name in SMALL}
        assert run.exit_code == 0
        summary = run.summary()
        assert summary["ok"] == len(SMALL)
        assert summary["degraded"] == summary["error"] == summary["timeout"] == 0

    def test_records_reuse_perf_vocabulary(self):
        run = run_corpus(apps=["quickstart"])
        record = run.records[0]
        assert set(record.stages) == {"cg_pa", "hbg", "refutation", "total"}
        assert record.counters["actions"] > 0
        assert record.counters["pointsto_worklist_iterations"] > 0
        assert record.report["racy_pairs"] >= record.report["races_after_refutation"]
        # the detector's stage events made it across the process boundary
        kinds = [e["kind"] for e in record.events]
        assert kinds.count("stage_end") == 3

    def test_report_json_round_trips(self, tmp_path):
        out = tmp_path / "RUN_report.json"
        run = run_corpus(apps=SMALL, out_path=str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == 2
        assert data["run_id"] is None  # no --history: provenance block empty
        assert data["history"] is None
        assert data["isolated"] is True
        assert set(data["apps"]) == set(SMALL)
        assert data["summary"] == run.summary()
        assert data["options"]["path_budget"] == 5000


class TestFaultIsolation:
    def test_injected_failure_isolates_and_records_traceback(self):
        run = run_corpus(apps=SMALL + ["opensudoku"], inject_fail=["dbapp"])
        statuses = _statuses(run)
        assert statuses["dbapp"] == STATUS_ERROR
        # the other apps still completed
        assert statuses["quickstart"] == statuses["opensudoku"] == STATUS_OK
        assert run.exit_code == 1
        error = next(r for r in run.records if r.app == "dbapp").error
        assert error["type"] == "RuntimeError"
        assert "injected failure" in error["message"]
        assert "RuntimeError" in error["traceback"]

    def test_timeout_kills_the_worker_and_continues(self):
        run = run_corpus(apps=SMALL, inject_hang=["quickstart"], timeout_s=1.0)
        statuses = _statuses(run)
        assert statuses["quickstart"] == STATUS_TIMEOUT
        assert statuses["dbapp"] == STATUS_OK
        assert run.exit_code == 1
        record = next(r for r in run.records if r.app == "quickstart")
        assert record.elapsed_s >= 1.0
        assert "wall-clock budget" in record.error["message"]

    def test_timeout_flushes_partial_events_and_names_stuck_stage(self, tmp_path):
        """A killed worker can't send its result payload, but the events it
        streamed before dying must still land in RUN_report.json — that's
        how an operator sees *where* a timed-out app was stuck."""
        out = tmp_path / "RUN_report.json"
        run = run_corpus(
            apps=["quickstart"],
            inject_hang=["quickstart"],
            timeout_s=1.0,
            out_path=str(out),
        )
        record = run.records[0]
        assert record.status == STATUS_TIMEOUT
        assert record.error["stuck_stage"] == "inject-hang"
        assert "stuck in stage 'inject-hang'" in record.error["message"]
        kinds = [(e["kind"], e.get("stage")) for e in record.events]
        assert ("stage_start", "inject-hang") in kinds
        assert ("stage_end", "inject-hang") not in kinds  # it never finished
        # and the flush survives into the written report
        data = json.loads(out.read_text())
        assert data["apps"]["quickstart"]["events"] == record.events

    def test_unknown_app_fails_the_batch_up_front(self):
        with pytest.raises(ValueError, match="unknown corpus app"):
            run_corpus(apps=["quickstart", "paper:NoSuchApp"])

    def test_inline_mode_still_catches_exceptions(self):
        run = run_corpus(apps=SMALL, isolate=False, inject_fail=["dbapp"])
        statuses = _statuses(run)
        assert statuses["dbapp"] == STATUS_ERROR
        assert statuses["quickstart"] == STATUS_OK
        assert run.exit_code == 1
        assert all(not r.isolated for r in run.records)


class TestNestedParallelism:
    def test_parallel_refutation_inside_isolated_worker_stays_ok(self):
        """Workers must not be daemonic: a daemonic worker cannot fork the
        refutation pool, silently costing every isolated app its
        --parallelism (it would show up here as status 'degraded')."""
        from repro.core import SierraOptions

        run = run_corpus(
            apps=["opensudoku"], options=SierraOptions(parallelism=2)
        )
        record = run.records[0]
        assert record.status == STATUS_OK
        assert record.degradations == []
        assert run.exit_code == 0


class TestDefaultCorpus:
    def test_contains_figures_and_all_paper_apps(self):
        corpus = default_corpus()
        assert "quickstart" in corpus and "opensudoku" in corpus
        assert sum(1 for name in corpus if name.startswith("paper:")) == 20
        assert all(is_known_app(name) for name in corpus)


class TestIsKnownApp:
    def test_known_names(self):
        assert is_known_app("quickstart")
        assert is_known_app("paper:apv")  # case-insensitive like load_app
        assert is_known_app("fdroid:0") and is_known_app("fdroid:173")

    def test_unknown_names(self):
        assert not is_known_app("nope")
        assert not is_known_app("paper:NoSuchApp")
        assert not is_known_app("fdroid:174")
        assert not is_known_app("fdroid:xyz")


class TestCorpusAnalyzeCli:
    def test_clean_cli_run_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "RUN_report.json"
        code = main(["corpus-analyze", "--apps", *SMALL, "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "2 ok, 0 degraded, 0 error, 0 timeout" in printed
        assert json.loads(out.read_text())["summary"]["exit_code"] == 0

    def test_cli_injected_failure_exits_one(self, tmp_path, capsys):
        out = tmp_path / "RUN_report.json"
        code = main(
            ["corpus-analyze", "--apps", *SMALL, "--out", str(out),
             "--inject-fail", "dbapp"]
        )
        assert code == 1
        printed = capsys.readouterr().out
        assert "RuntimeError: injected failure" in printed
        data = json.loads(out.read_text())
        assert data["apps"]["dbapp"]["status"] == "error"
        assert data["summary"]["error"] == 1

    def test_cli_unknown_app_is_a_clear_one_liner(self, capsys):
        assert main(["corpus-analyze", "--apps", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown corpus app" in err
        assert "Traceback" not in err
