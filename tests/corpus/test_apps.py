"""Figure apps: validation and expected detection outcomes."""

from repro.core.actions import ActionKind


class TestNewsreaderFigure1:
    def test_validates(self, newsreader_apk):
        assert newsreader_apk.validate().ok

    def test_intra_component_races_detected(self, newsreader_result):
        fields = {p.field_name for p in newsreader_result.surviving}
        assert "data" in fields  # background write vs scroll read
        assert "cachedCount" in fields  # onPostExecute vs onScroll

    def test_data_race_is_cross_thread(self, newsreader_result):
        for p in newsreader_result.surviving:
            if p.field_name == "data":
                assert p.kind == "data"

    def test_event_race_on_main_looper(self, newsreader_result):
        for p in newsreader_result.surviving:
            if p.field_name == "cachedCount":
                assert p.kind == "event"


class TestReceiverFigure2:
    def test_validates(self, receiver_apk):
        assert receiver_apk.validate().ok

    def test_inter_component_races_detected(self, receiver_result):
        fields = {p.field_name for p in receiver_result.surviving}
        assert "isOpen" in fields
        assert "mDB" in fields

    def test_receiver_action_involved(self, receiver_result):
        ext = receiver_result.extraction
        acts = {a.id: a for a in ext.actions}
        for p in receiver_result.surviving:
            if p.field_name == "isOpen":
                kinds = {acts[i].kind for i in p.actions}
                assert ActionKind.SYSTEM in kinds

    def test_registration_orders_oncreate_before_onreceive(self, receiver_result):
        ext, shbg = receiver_result.extraction, receiver_result.shbg
        create = next(a for a in ext.actions if a.callback == "onCreate")
        receive = next(a for a in ext.actions if a.callback == "onReceive")
        assert shbg.ordered(create.id, receive.id)


class TestOpenSudokuFigure8:
    def test_validates(self, opensudoku_apk):
        assert opensudoku_apk.validate().ok

    def test_refutation_delta(self, opensudoku_result):
        r = opensudoku_result.report
        assert r.races_after_refutation < r.racy_pairs


class TestQuickstart:
    def test_single_counter_race(self, quickstart_result):
        fields = {p.field_name for p in quickstart_result.surviving}
        assert fields == {"counter"}

    def test_two_handlers_race(self, quickstart_result):
        ext = quickstart_result.extraction
        acts = {a.id: a for a in ext.actions}
        (pair,) = quickstart_result.surviving
        callbacks = {acts[i].callback for i in pair.actions}
        assert callbacks == {"onClickIncrement", "onClickReset"}
