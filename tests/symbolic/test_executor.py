"""Backward symbolic execution on hand-built methods."""

import pytest

from repro.analysis.callgraph import CallGraph, MethodContext
from repro.analysis.icfg import ActionICFG
from repro.analysis.pointsto import Entry, analyze
from repro.android.framework import install_framework
from repro.core.accesses import Location
from repro.ir.builder import ProgramBuilder
from repro.symbolic.executor import BackwardExecutor
from repro.symbolic.state import SymState


def build_guarded(emit_extra=None):
    """this.flag guards a write to this.cell (the Figure 8 reader side)."""
    pb = ProgramBuilder()
    install_framework(pb.program)
    cls = pb.new_class("t.A", superclass="android.app.Activity")
    cls.field("flag", __import__("repro").ir.BOOL)
    cls.field("cell", __import__("repro").ir.INT)
    mb = cls.method("reader")
    mb.load("f", "this", "flag")
    mb.if_false("f", "end")
    access = mb.store("this", "cell", 1)
    mb.label("end").ret()
    other = cls.method("writer")
    other.load("g", "this", "flag")
    other.if_false("g", "done")
    other.const("ff", False)
    other.store("this", "flag", "ff")
    w_access = other.store("this", "cell", 2)
    other.label("done").ret()
    harness = pb.new_class("t.H").method("main", is_static=True)
    harness.new("a", "t.A")
    harness.call("a", "reader")
    harness.call("a", "writer")
    harness.ret()
    result = analyze(pb.program, [Entry(harness.method)])
    return pb.program, result, mb.method, other.method, access, w_access


def single_method_icfg(result, method):
    mcs = [mc for mc in result.call_graph.nodes if mc.method is method]
    return ActionICFG(result.call_graph, mcs), mcs


class TestCollection:
    def test_guard_constraint_collected_at_entry(self):
        program, result, reader, writer, access, _ = build_guarded()
        icfg, mcs = single_method_icfg(result, reader)
        ex = BackwardExecutor(icfg, result)
        start = icfg.sites_of_instruction(access)
        entries = {icfg.entry_node(mc) for mc in mcs}
        outcome = ex.search(start, entries)
        assert outcome.feasible
        # the surviving state must constrain (activity).flag == True
        found = False
        for state in outcome.final_states:
            for loc, c in state.locs.items():
                if loc.field == "flag":
                    assert c.satisfied_by(True) and not c.satisfied_by(False)
                    found = True
        assert found

    def test_unguarded_access_unconstrained(self):
        program, result, reader, writer, access, _ = build_guarded()
        icfg, mcs = single_method_icfg(result, reader)
        ex = BackwardExecutor(icfg, result)
        # start from the entry itself: trivially feasible, no constraints
        entries = {icfg.entry_node(mc) for mc in mcs}
        outcome = ex.search(list(entries), entries)
        assert outcome.feasible
        assert all(not s.locs for s in outcome.final_states)


class TestRefutationCore:
    def test_strong_update_kills_conflicting_path(self):
        """Walking the writer backward from its exit, requiring flag==True at
        its entry boundary AND passing the guarded write: the strong update
        flag=false contradicts — no feasible path (Figure 8's core step)."""
        program, result, reader, writer, access, w_access = build_guarded()
        icfg, mcs = single_method_icfg(result, writer)
        ex = BackwardExecutor(icfg, result)
        entries = {icfg.entry_node(mc) for mc in mcs}
        exits = []
        for mc in mcs:
            exits.extend(icfg.exit_nodes(mc))

        # carry the reader-side constraint: flag == True at reader entry
        from repro.ir.instructions import CmpOp
        from repro.symbolic.constraints import TRIVIAL

        initial = SymState()
        flag_locs = [
            Location(obj, "flag")
            for mc in mcs
            for obj in result.var(mc, "this")
        ]
        assert flag_locs
        for loc in flag_locs:
            initial.merge_loc(loc, TRIVIAL.require(CmpOp.EQ, True))

        must = set(icfg.sites_of_instruction(w_access))
        outcome = ex.search(exits, entries, initial=initial, must_pass=must, stop_at_first=True)
        assert not outcome.feasible

    def test_without_constraint_writer_path_feasible(self):
        program, result, reader, writer, access, w_access = build_guarded()
        icfg, mcs = single_method_icfg(result, writer)
        ex = BackwardExecutor(icfg, result)
        entries = {icfg.entry_node(mc) for mc in mcs}
        exits = [n for mc in mcs for n in icfg.exit_nodes(mc)]
        must = set(icfg.sites_of_instruction(w_access))
        outcome = ex.search(exits, entries, must_pass=must, stop_at_first=True)
        assert outcome.feasible

    def test_must_pass_excludes_skipping_paths(self):
        """Without must_pass the flag==True initial state can exit through
        the not-running path; with must_pass it cannot."""
        program, result, reader, writer, access, w_access = build_guarded()
        icfg, mcs = single_method_icfg(result, writer)
        ex = BackwardExecutor(icfg, result)
        entries = {icfg.entry_node(mc) for mc in mcs}
        exits = [n for mc in mcs for n in icfg.exit_nodes(mc)]
        outcome = ex.search(exits, entries, stop_at_first=True)
        assert outcome.feasible  # skip path exists without must_pass


class TestBudget:
    def test_budget_exceeded_reported(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        cls = pb.new_class("t.C")
        mb = cls.method("m")
        # a dense diamond chain to blow a tiny budget
        for i in range(10):
            mb.const(f"c{i}", True)
            mb.if_true(f"c{i}", f"l{i}")
            mb.nop()
            mb.label(f"l{i}").nop()
        access = mb.store("this", "x", 1)
        mb.ret()
        harness = pb.new_class("t.H").method("main", is_static=True)
        harness.new("o", "t.C")
        harness.call("o", "m")
        harness.ret()
        result = analyze(pb.program, [Entry(harness.method)])
        icfg, mcs = single_method_icfg(result, mb.method)
        ex = BackwardExecutor(icfg, result, path_budget=5)
        entries = {icfg.entry_node(mc) for mc in mcs}
        outcome = ex.search(icfg.sites_of_instruction(access), entries)
        assert outcome.budget_exceeded

    def test_refuted_node_cache_prunes(self):
        program, result, reader, writer, access, w_access = build_guarded()
        icfg, mcs = single_method_icfg(result, reader)
        cache = set(icfg.sites_of_instruction(access))
        ex = BackwardExecutor(icfg, result, refuted_node_cache=cache)
        entries = {icfg.entry_node(mc) for mc in mcs}
        outcome = ex.search(icfg.sites_of_instruction(access), entries)
        assert outcome.cache_hits > 0
        assert not outcome.feasible
