"""Symbolic state: register frames, locations, fact consistency."""

from repro.analysis.callgraph import MethodContext
from repro.core.accesses import Location
from repro.ir.instructions import CmpOp
from repro.ir.program import Method
from repro.symbolic.constraints import TRIVIAL
from repro.symbolic.state import SymState


def mc(name="m"):
    return MethodContext(Method("t.C", name))


class TestRegisters:
    def test_require_and_read_back(self):
        s = SymState()
        frame = mc()
        assert s.require_reg(frame, "x", CmpOp.EQ, 3)
        assert s.reg(frame, "x").satisfied_by(3)
        assert not s.reg(frame, "x").satisfied_by(4)

    def test_conflict_returns_false(self):
        s = SymState()
        frame = mc()
        assert s.require_reg(frame, "x", CmpOp.EQ, 3)
        assert not s.require_reg(frame, "x", CmpOp.EQ, 4)

    def test_pop_removes(self):
        s = SymState()
        frame = mc()
        s.require_reg(frame, "x", CmpOp.EQ, 1)
        popped = s.pop_reg(frame, "x")
        assert not popped.is_trivial()
        assert s.reg(frame, "x").is_trivial()
        assert s.pop_reg(frame, "x").is_trivial()

    def test_frames_are_independent(self):
        s = SymState()
        f1, f2 = mc("a"), mc("b")
        s.require_reg(f1, "x", CmpOp.EQ, 1)
        assert s.reg(f2, "x").is_trivial()

    def test_drop_frame(self):
        s = SymState()
        f1, f2 = mc("a"), mc("b")
        s.require_reg(f1, "x", CmpOp.EQ, 1)
        s.require_reg(f2, "x", CmpOp.EQ, 2)
        s.drop_frame(f1)
        assert s.reg(f1, "x").is_trivial()
        assert not s.reg(f2, "x").is_trivial()

    def test_merge_reg_conflict(self):
        s = SymState()
        frame = mc()
        s.require_reg(frame, "x", CmpOp.EQ, 1)
        conflicting = TRIVIAL.require(CmpOp.EQ, 2)
        assert not s.merge_reg(frame, "x", conflicting)


class TestLocations:
    def test_merge_and_pop(self):
        s = SymState()
        loc = Location("t.C", "flag")
        assert s.merge_loc(loc, TRIVIAL.require(CmpOp.EQ, True))
        assert not s.loc(loc).is_trivial()
        s.pop_loc(loc)
        assert s.loc(loc).is_trivial()

    def test_merge_conflict(self):
        s = SymState()
        loc = Location("t.C", "flag")
        s.merge_loc(loc, TRIVIAL.require(CmpOp.EQ, True))
        assert not s.merge_loc(loc, TRIVIAL.require(CmpOp.EQ, False))


class TestCloneAndFacts:
    def test_clone_is_independent(self):
        s = SymState()
        frame = mc()
        s.require_reg(frame, "x", CmpOp.EQ, 1)
        c = s.clone()
        c.pop_reg(frame, "x")
        assert not s.reg(frame, "x").is_trivial()

    def test_facts_consistency(self):
        s = SymState()
        loc = Location("t.C", "what")
        s.merge_loc(loc, TRIVIAL.require(CmpOp.EQ, 3))
        assert s.consistent_with_facts({loc: 3})
        assert not s.consistent_with_facts({loc: 4})
        assert s.consistent_with_facts({Location("t.C", "other"): 9})

    def test_canonical_digest_stable(self):
        s = SymState()
        frame = mc()
        s.require_reg(frame, "x", CmpOp.EQ, 1)
        t = s.clone()
        assert s.canonical() == t.canonical()
        t.require_reg(frame, "y", CmpOp.NE, None)
        assert s.canonical() != t.canonical()
