"""The constraint language and its decision procedure."""

from hypothesis import given, strategies as st

from repro.ir.instructions import CmpOp
from repro.symbolic.constraints import ConstraintSet, NOT_NULL, TRIVIAL


class TestRequire:
    def test_eq_then_conflicting_eq(self):
        c = TRIVIAL.require(CmpOp.EQ, 3)
        assert c is not None
        assert c.require(CmpOp.EQ, 4) is None
        assert c.require(CmpOp.EQ, 3) is not None

    def test_eq_then_ne_conflict(self):
        c = TRIVIAL.require(CmpOp.EQ, True)
        assert c.require(CmpOp.NE, True) is None

    def test_ne_then_eq_conflict(self):
        c = TRIVIAL.require(CmpOp.NE, None)
        assert c.require(CmpOp.EQ, None) is None
        assert c.require(CmpOp.EQ, 5) is not None

    def test_bounds_conjunction(self):
        c = TRIVIAL.require(CmpOp.GE, 2).require(CmpOp.LE, 5)
        assert c is not None
        assert c.require(CmpOp.GT, 5) is None
        assert c.require(CmpOp.LT, 2) is None
        assert c.require(CmpOp.EQ, 3) is not None
        assert c.require(CmpOp.EQ, 9) is None

    def test_eq_respects_existing_bounds(self):
        c = TRIVIAL.require(CmpOp.LT, 3)
        assert c.require(CmpOp.EQ, 5) is None
        assert c.require(CmpOp.EQ, 2) is not None

    def test_ordered_comparison_on_non_int_no_refinement(self):
        c = TRIVIAL.require(CmpOp.LT, "str")
        assert c is TRIVIAL

    def test_bool_and_int_kept_apart(self):
        c = TRIVIAL.require(CmpOp.EQ, True)
        # Java would not alias boolean true with int 1
        assert c.require(CmpOp.EQ, 1) is None


class TestNotNull:
    def test_new_object_satisfies_not_null(self):
        c = TRIVIAL.require(CmpOp.NE, None)
        assert c.satisfied_by(NOT_NULL)

    def test_new_object_conflicts_with_null_requirement(self):
        c = TRIVIAL.require(CmpOp.EQ, None)
        assert not c.satisfied_by(NOT_NULL)

    def test_two_not_nulls_maybe_equal(self):
        c = TRIVIAL.require(CmpOp.EQ, NOT_NULL)
        assert c.satisfied_by(NOT_NULL)  # unknown ⇒ satisfiable


class TestSatisfiedBy:
    def test_exact_value(self):
        c = TRIVIAL.require(CmpOp.EQ, 3)
        assert c.satisfied_by(3)
        assert not c.satisfied_by(4)

    def test_trivial_satisfied_by_anything(self):
        for v in (0, None, True, "x", NOT_NULL):
            assert TRIVIAL.satisfied_by(v)

    def test_bounds(self):
        c = TRIVIAL.require(CmpOp.GE, 0)
        assert c.satisfied_by(0)
        assert not c.satisfied_by(-1)
        assert c.satisfied_by(None)  # non-int: bounds don't apply


class TestMerge:
    def test_merge_compatible(self):
        a = TRIVIAL.require(CmpOp.GE, 0)
        b = TRIVIAL.require(CmpOp.LE, 10)
        merged = a.merge(b)
        assert merged is not None
        assert merged.lo == 0 and merged.hi == 10

    def test_merge_conflicting(self):
        a = TRIVIAL.require(CmpOp.EQ, 1)
        b = TRIVIAL.require(CmpOp.EQ, 2)
        assert a.merge(b) is None

    def test_merge_with_trivial_is_identity(self):
        a = TRIVIAL.require(CmpOp.EQ, 1)
        assert a.merge(TRIVIAL) == a

    @given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
    def test_merge_soundness(self, v, lo, hi):
        """A value satisfying the merge satisfies both conjuncts."""
        a = TRIVIAL.require(CmpOp.GE, lo)
        b = TRIVIAL.require(CmpOp.LE, hi)
        merged = a.merge(b)
        if merged is None:
            assert lo > hi
        else:
            assert merged.satisfied_by(v) == (a.satisfied_by(v) and b.satisfied_by(v))

    @given(
        st.lists(
            st.tuples(st.sampled_from(list(CmpOp)), st.integers(-5, 5)), max_size=6
        ),
        st.integers(-5, 5),
    )
    def test_require_chain_soundness(self, ops, probe):
        """If every individual requirement holds of `probe`, the accumulated
        constraint must not reject it (no false conflicts)."""
        c = TRIVIAL
        for op, val in ops:
            if not op.evaluate(probe, val):
                return  # probe doesn't model this chain
            c = c.require(op, val)
            assert c is not None, f"falsely refuted {ops} for {probe}"
        assert c.satisfied_by(probe)


class TestRepr:
    def test_trivial_repr(self):
        assert repr(TRIVIAL) == "{*}"

    def test_nontrivial_repr_mentions_parts(self):
        c = TRIVIAL.require(CmpOp.EQ, 3)
        assert "3" in repr(c)
