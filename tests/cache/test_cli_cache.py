"""CLI + driver surfaces of the cache: subcommands, targeted queries,
corruption injection, the warm bench record."""

import json

from repro.cli import main
from repro.corpus.driver import run_corpus
from repro.core import SierraOptions


class TestCacheSubcommands:
    def test_stats_and_gc_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["analyze", "quickstart", "--cache", cache]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "substrate" in out and "verdict" in out

        assert main(["cache", "stats", "--cache", cache, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] >= 3  # substrate + app index + verdict(s)

        assert main(["cache", "gc", "--cache", cache, "--max-age-days", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out

    def test_missing_cache_dir_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["cache", "stats"]) == 2
        assert main(["cache", "stats", "--cache", str(tmp_path / "nope")]) == 2
        assert main(["cache", "gc"]) == 2

    def test_cache_env_var_enables_caching(self, tmp_path, capsys, monkeypatch):
        cache = tmp_path / "envcache"
        cache.mkdir()
        monkeypatch.setenv("REPRO_CACHE", str(cache))
        assert main(["analyze", "quickstart"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "substrate" in capsys.readouterr().out


class TestOnlyFieldCli:
    def test_match_prints_selected(self, capsys):
        assert main(["analyze", "quickstart", "--only-field", "counter"]) == 0
        out = capsys.readouterr().out
        assert "selected for 'counter'=1" in out

    def test_no_match_exits_2_listing_candidates(self, capsys):
        assert main(["analyze", "quickstart", "--only-field", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "matches none" in err
        assert "counter" in err  # the candidate list

    def test_json_carries_query(self, capsys):
        assert main(
            ["analyze", "quickstart", "--only-field", "counter", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["only_field"] == "counter"
        assert data["racy_pairs_selected"] == 1


class TestInjectCacheCorrupt:
    def test_corrupted_cache_analyzes_cold_with_warning(self, tmp_path):
        cache = str(tmp_path / "cache")
        options = SierraOptions(cache_dir=cache)
        # populate, then re-run with every entry truncated
        run_corpus(apps=["quickstart"], options=options, isolate=False)
        run = run_corpus(
            apps=["quickstart"],
            options=options,
            isolate=False,
            inject_cache_corrupt={"quickstart"},
        )
        (record,) = run.records
        assert record.status in ("ok", "degraded")
        assert record.report["races_after_refutation"] == 1
        warnings = " ".join(record.warnings)
        assert "injected cache corruption" in warnings
        assert "corrupt" in warnings  # the store's own loud fallback

    def test_injection_is_noop_without_cache(self):
        run = run_corpus(
            apps=["quickstart"],
            options=SierraOptions(),
            isolate=False,
            inject_cache_corrupt={"quickstart"},
        )
        (record,) = run.records
        assert record.status == "ok"
        assert not any("cache" in w for w in record.warnings)


class TestWarmBench:
    def test_warm_record_and_equivalence(self, tmp_path):
        from repro.perf import run_warm_bench

        cache = str(tmp_path / "cache")
        data = run_warm_bench(["quickstart"], cache)
        rec = data["apps"]["quickstart"]
        assert rec["warm_speedup"] > 0
        assert rec["counters"]["cache_substrate_hits"] == 1
        assert rec["counters"]["refutation_cache_hits"] > 0
        assert data["equivalence"]["identical"]
        assert data["cold_apps"]["quickstart"]["stages"]["total"] > 0

    def test_run_bench_warm_embeds_section(self, tmp_path):
        from repro.perf import run_bench

        out = tmp_path / "BENCH.json"
        data = run_bench(
            apps=["quickstart"],
            speedup_app=None,
            out_path=str(out),
            cache_dir=str(tmp_path / "cache"),
            warm=True,
        )
        written = json.loads(out.read_text())
        for record in (data, written):
            assert "warm" in record
            assert record["warm"]["equivalence"]["identical"]
            # the cold pass doubles as the baseline app numbers
            assert "quickstart" in record["apps"]

    def test_bench_warm_requires_cache(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["bench", "--warm", "--apps", "quickstart", "--out", ""]) == 2
        assert "needs a cache" in capsys.readouterr().err
