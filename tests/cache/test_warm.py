"""Warm re-analysis: cached runs must be byte-identical to cold ones.

The cache is machine-checked equivalence, not best-effort: a warm run must
report the same fingerprints and refutation verdicts as the cold run that
populated the cache, while doing (near-)zero substrate work.
"""

import pytest

from repro.cli import load_app
from repro.core import Sierra, SierraOptions
from repro.obs import metrics


def run(app: str, **opts):
    result = Sierra(SierraOptions(**opts)).analyze(load_app(app))
    scrape = dict(metrics.registry().totals())
    return result, scrape


def fingerprints(result):
    return sorted(r.fingerprint for r in result.report.reports)


def verdicts(result):
    return {
        r.fingerprint: (r.pair.field_name, r.tier, r.priority)
        for r in result.report.reports
    }


class TestWarmEqualsCold:
    @pytest.mark.parametrize("app", ["quickstart", "paper:APV"])
    def test_full_hit_replays_identically(self, app, tmp_path):
        cache = str(tmp_path / "cache")
        cold, cold_scrape = run(app, cache_dir=cache)
        warm, warm_scrape = run(app, cache_dir=cache)

        assert fingerprints(warm) == fingerprints(cold)
        assert verdicts(warm) == verdicts(cold)
        assert warm.report.racy_pairs == cold.report.racy_pairs
        assert (
            warm.report.races_after_refutation == cold.report.races_after_refutation
        )

        assert cold_scrape["cache.substrate_misses"] == 1
        assert warm_scrape["cache.substrate_hits"] == 1
        # the whole fixpoint is replayed from the bundle: zero worklist units
        assert warm_scrape["pointsto.worklist_iterations"] == 0
        # every verdict came from the persistent memo
        assert warm_scrape["refutation.cache_hits"] > 0
        assert (
            warm_scrape["refutation.cache_hits"]
            == warm.report.refutation_stats["candidates"]
        )
        assert warm_scrape["refutation.nodes_expanded"] == 0

    def test_uncached_run_records_nothing(self):
        _, scrape = run("quickstart")
        assert scrape.get("cache.substrate_hits", 0) == 0
        assert scrape.get("cache.substrate_misses", 0) == 0

    def test_caches_are_per_options(self, tmp_path):
        """A different abstraction must not reuse the bundle."""
        cache = str(tmp_path / "cache")
        run("quickstart", cache_dir=cache)
        _, scrape = run("quickstart", cache_dir=cache, selector="hybrid")
        assert scrape["cache.substrate_misses"] == 1
        assert scrape.get("cache.substrate_hits", 0) == 0


class TestParallelMemoEquivalence:
    """Satellite 1: memo hits ship back from fork-pool workers, so serial
    and parallel warm runs scrape identical refutation totals."""

    def test_serial_equals_parallel_totals(self, tmp_path):
        serial_cache = str(tmp_path / "serial")
        run("paper:APV", cache_dir=serial_cache)
        warm_serial, scrape_serial = run("paper:APV", cache_dir=serial_cache)

        parallel_cache = str(tmp_path / "parallel")
        run("paper:APV", cache_dir=parallel_cache, parallelism=3)
        warm_parallel, scrape_parallel = run(
            "paper:APV", cache_dir=parallel_cache, parallelism=3
        )

        assert (
            warm_serial.report.refutation_stats
            == warm_parallel.report.refutation_stats
        )
        for name in (
            "refutation.cache_hits",
            "refutation.candidates",
            "refutation.refuted",
            "refutation.nodes_expanded",
            "cache.refutation_memo_hits",
        ):
            assert scrape_serial[name] == scrape_parallel[name], name
        assert scrape_parallel["refutation.cache_hits"] > 0

    def test_cold_parallel_persists_for_serial_warm(self, tmp_path):
        """Verdicts computed by pool workers are flushed by the parent and
        serve a later serial run."""
        cache = str(tmp_path / "cache")
        _, cold_scrape = run("paper:APV", cache_dir=cache, parallelism=3)
        assert cold_scrape["cache.refutation_memo_stored"] > 0
        warm, warm_scrape = run("paper:APV", cache_dir=cache)
        assert (
            warm_scrape["refutation.cache_hits"]
            == warm.report.refutation_stats["candidates"]
        )


class TestOnlyField:
    def test_only_field_filters_refutation(self, tmp_path):
        full, _ = run("paper:APV")
        target = full.report.reports[0].field_name
        sliced, _ = run("paper:APV", only_field=target)
        assert sliced.report.only_field == target
        # enumeration is still complete; only refutation/reporting narrowed
        assert sliced.report.racy_pairs == full.report.racy_pairs
        assert (
            sliced.report.racy_pairs_selected
            == sliced.report.refutation_stats["candidates"]
        )
        assert sliced.report.racy_pairs_selected < full.report.racy_pairs
        assert all(r.field_name == target for r in sliced.report.reports)

    def test_only_field_verdicts_match_full_run(self):
        full, _ = run("paper:APV")
        target = full.report.reports[0].field_name
        sliced, _ = run("paper:APV", only_field=target)
        full_fps = {
            r.fingerprint for r in full.report.reports if r.field_name == target
        }
        assert {r.fingerprint for r in sliced.report.reports} == full_fps

    def test_only_field_warm_uses_memo(self, tmp_path):
        cache = str(tmp_path / "cache")
        full, _ = run("paper:APV", cache_dir=cache)
        target = full.report.reports[0].field_name
        sliced, scrape = run("paper:APV", cache_dir=cache, only_field=target)
        assert scrape["cache.substrate_hits"] == 1
        # the targeted slice's verdicts were all memoised by the full run
        assert (
            scrape["refutation.cache_hits"]
            == sliced.report.refutation_stats["candidates"]
        )

    def test_no_match_selects_zero(self):
        result, _ = run("quickstart", only_field="no.such.field")
        assert result.report.racy_pairs_selected == 0
        assert result.report.races_after_refutation == 0
        assert result.report.racy_pairs == 1  # enumeration unaffected
