"""Cross-run incremental analysis: diff, graft, resume precision.

Satellite guarantee: after an additive change to one method, only the
points-to units that (transitively) depend on it recompute — disjoint
components of the program are never re-enqueued — and the resumed fixpoint
equals a cold solve of the new program. Non-additive changes fall back to
cold, loudly.
"""

import pytest

from repro import obs
from repro.analysis.context import InsensitiveSelector
from repro.analysis.pointsto import Entry, PointerAnalysis
from repro.cache.incremental import diff_programs, graft
from repro.cache.keys import method_digest
from repro.cli import load_app
from repro.core import Sierra, SierraOptions
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import Invoke, Nop
from repro.obs import metrics


def two_component_program():
    """Two disjoint call trees: A.main -> A.helper and B.main -> B.helper."""
    pb = ProgramBuilder()
    from repro.android.framework import install_framework

    install_framework(pb.program)
    entries = []
    for tag in ("A", "B"):
        cb = pb.new_class(f"t.{tag}")
        helper = cb.method("helper")
        helper.new("o", f"t.{tag}")
        helper.store("this", "cell", "o")
        helper.ret()
        main = cb.method("main")
        main.new("h", f"t.{tag}")
        main.call("h", "helper")
        main.ret()
        entries.append(Entry(main.method))
    return pb.program, entries


def solve(program, entries, replay=False):
    analysis = PointerAnalysis(
        program, entries, selector=InsensitiveSelector(), solver="worklist"
    )
    if replay:
        analysis.replay_log = []
    result = analysis.solve()
    return analysis, result


class TestResumePrecision:
    def test_resume_replays_only_dependents(self):
        program, entries = two_component_program()
        analysis, _ = solve(program, entries)

        # additive change to A.helper only
        a_helper = program.classes["t.A"].methods["helper"]
        a_helper.body.insert(len(a_helper.body) - 1, Nop())
        a_helper._cfg = None

        analysis.replay_log = []
        analysis.resume([a_helper])
        replayed = {sig for sig, _ in analysis.replay_log}
        assert any("t.A.helper" in sig for sig in replayed)
        # the disjoint B component never recomputes
        assert not any(".B." in sig for sig in replayed)

    def test_resume_reaches_fixpoint_of_new_program(self):
        program, entries = two_component_program()
        analysis, _ = solve(program, entries)
        before = analysis.worklist_iterations

        # append a second allocation + store into A.helper
        a_helper = program.classes["t.A"].methods["helper"]
        mb_prog = ProgramBuilder()
        from repro.android.framework import install_framework

        install_framework(mb_prog.program)
        cb = mb_prog.new_class("t.X")
        tmp = cb.method("tmp")
        tmp.new("o2", "t.A")
        tmp.store("this", "cell", "o2")
        ret = a_helper.body.pop()  # keep Return last
        a_helper.body.extend(tmp.method.body[:2])
        a_helper.body.append(ret)
        a_helper._cfg = None

        resumed = analysis.resume([a_helper])
        assert analysis.worklist_iterations > before

        cold_analysis, cold = solve(program, entries)
        a_mc = next(
            mc for mc in cold.call_graph.nodes if mc.method is a_helper
        )
        a_mc_resumed = next(
            mc for mc in resumed.call_graph.nodes if mc.method is a_helper
        )
        assert {repr(o) for o in resumed.var(a_mc_resumed, "o2")} == {
            repr(o) for o in cold.var(a_mc, "o2")
        }
        assert resumed.variable_count() == cold.variable_count()


class TestDiffPrograms:
    def test_identical_programs_trivial(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        delta = diff_programs(p1, p2)
        assert delta.additive and delta.trivial

    def test_appended_body_is_additive(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        m = p2.classes["t.A"].methods["helper"]
        m.body.append(Nop())
        delta = diff_programs(p1, p2)
        assert delta.additive
        assert [old.signature for old, _ in delta.changed] == ["t.A.helper"]

    def test_new_method_and_class_are_additive(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        pb = ProgramBuilder(p2)
        extra = pb.class_builder("t.A").method("extra")
        extra.ret()
        fresh = pb.new_class("t.C")
        fm = fresh.method("m")
        fm.ret()
        delta = diff_programs(p1, p2)
        assert delta.additive
        assert [m.signature for m in delta.added_methods] == ["t.A.extra"]
        assert delta.added_classes == ["t.C"]

    def test_rewritten_body_is_not_additive(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        m = p2.classes["t.A"].methods["helper"]
        m.body.insert(0, Nop())  # prefix property broken
        delta = diff_programs(p1, p2)
        assert not delta.additive
        assert "non-additively" in delta.reason

    def test_removed_method_is_not_additive(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        del p2.classes["t.A"].methods["helper"]
        assert not diff_programs(p1, p2).additive

    def test_appended_listener_registration_is_not_additive(self):
        """New registrations would stale the cached harness: bail."""
        from repro.android.framework import LISTENER_REGISTRATIONS

        reg_name = next(iter(LISTENER_REGISTRATIONS))
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        m = p2.classes["t.A"].methods["helper"]
        mb = ProgramBuilder().new_class("t.T").method("t")
        mb.call("this", reg_name, "this")
        m.body.append(mb.method.body[0])  # appended suffix: prefix rule holds
        assert isinstance(m.body[-1], Invoke)
        delta = diff_programs(p1, p2)
        assert not delta.additive
        assert reg_name in delta.reason

    def test_graft_refuses_non_additive(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        del p2.classes["t.B"]
        delta = diff_programs(p1, p2)
        with pytest.raises(ValueError):
            graft(p1, p2, delta)

    def test_graft_applies_suffix_in_place(self):
        p1, _ = two_component_program()
        p2, _ = two_component_program()
        m2 = p2.classes["t.A"].methods["helper"]
        m2.body.append(Nop())
        delta = diff_programs(p1, p2)
        m1 = p1.classes["t.A"].methods["helper"]
        invalidated = graft(p1, p2, delta)
        assert invalidated == [m1]
        assert method_digest(m1) == method_digest(m2)


class TestDetectorIncremental:
    def _mutated_quickstart(self):
        apk = load_app("quickstart")
        method = next(
            m
            for c in apk.program.classes.values()
            if not c.is_framework
            for m in c.methods.values()
            if m.body
        )
        method.body.append(Nop())
        return apk, method

    def test_additive_change_resumes_and_matches_cold(self, tmp_path):
        cache = str(tmp_path / "cache")
        opts = SierraOptions(cache_dir=cache)
        Sierra(opts).analyze(load_app("quickstart"))
        cold_units = metrics.registry().value("pointsto.worklist_iterations")

        apk, method = self._mutated_quickstart()
        with obs.Recorder() as rec:
            warm = Sierra(opts).analyze(apk)
        scrape = dict(metrics.registry().totals())
        assert scrape["cache.incremental_runs"] == 1
        assert scrape.get("cache.incremental_fallbacks", 0) == 0
        # only dependents of the mutated method recompute
        assert 0 < scrape["pointsto.worklist_iterations"] < cold_units
        assert any("resuming cached fixpoint" in w for w in rec.warnings())

        # reference: cold analysis of the same mutated program
        apk2, _ = self._mutated_quickstart()
        cold = Sierra(SierraOptions()).analyze(apk2)
        assert sorted(r.fingerprint for r in warm.report.reports) == sorted(
            r.fingerprint for r in cold.report.reports
        )
        assert (
            warm.report.races_after_refutation == cold.report.races_after_refutation
        )

    def test_untouched_app_is_full_hit_after_incremental(self, tmp_path):
        """The incremental run re-saves its substrate: analyzing the same
        mutated app again is a 100% hit."""
        cache = str(tmp_path / "cache")
        opts = SierraOptions(cache_dir=cache)
        Sierra(opts).analyze(load_app("quickstart"))
        apk, _ = self._mutated_quickstart()
        Sierra(opts).analyze(apk)
        apk2, _ = self._mutated_quickstart()
        Sierra(opts).analyze(apk2)
        scrape = dict(metrics.registry().totals())
        assert scrape["cache.substrate_hits"] == 1
        assert scrape["pointsto.worklist_iterations"] == 0

    def test_non_additive_change_falls_back_loudly(self, tmp_path):
        cache = str(tmp_path / "cache")
        opts = SierraOptions(cache_dir=cache)
        Sierra(opts).analyze(load_app("quickstart"))

        apk = load_app("quickstart")
        method = next(
            m
            for c in apk.program.classes.values()
            if not c.is_framework
            for m in c.methods.values()
            if m.body
        )
        method.body.insert(0, Nop())  # not a suffix append
        with obs.Recorder() as rec:
            result = Sierra(opts).analyze(apk)
        scrape = dict(metrics.registry().totals())
        assert scrape["cache.incremental_fallbacks"] == 1
        assert scrape.get("cache.incremental_runs", 0) == 0
        assert any("full cold re-analysis" in w for w in rec.warnings())
        assert result.report.races_after_refutation >= 0  # analysis completed
