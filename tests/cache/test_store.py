"""Content-addressed store: roundtrip, corruption fallback, stats, gc."""

import json
import os
import time

import pytest

from repro import obs
from repro.cache import (
    CACHE_VERSION,
    SubstrateStore,
    cache_dir_from_env,
    corrupt_store_for_testing,
)


@pytest.fixture()
def store(tmp_path):
    s = SubstrateStore(str(tmp_path / "cache"))
    yield s
    s.close()


class TestRoundtrip:
    def test_put_get(self, store):
        assert store.put("verdict", "a" * 48, (True, None, False))
        assert store.get("verdict", "a" * 48) == (True, None, False)

    def test_missing_is_miss(self, store):
        assert store.get("verdict", "f" * 48) is None

    def test_kinds_are_disjoint(self, store):
        store.put("verdict", "a" * 48, 1)
        assert store.get("substrate", "a" * 48) is None

    def test_overwrite(self, store):
        store.put("verdict", "a" * 48, 1)
        store.put("verdict", "a" * 48, 2)
        assert store.get("verdict", "a" * 48) == 2


class TestCorruption:
    """A damaged entry must warn loudly, count, and fall back to a miss —
    never crash, never silently serve bad bytes."""

    def _assert_corrupt_miss(self, store, key="a" * 48):
        with obs.Recorder() as rec:
            assert store.get("verdict", key) is None
        assert any("corrupt" in w for w in rec.warnings())
        # the entry is dropped so the next lookup is a plain miss
        assert not os.path.exists(store._path("verdict", key))

    def test_truncated_payload(self, store):
        store.put("verdict", "a" * 48, (True, None, False))
        path = store._path("verdict", "a" * 48)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        self._assert_corrupt_miss(store)

    def test_bad_magic(self, store):
        store.put("verdict", "a" * 48, 1)
        path = store._path("verdict", "a" * 48)
        with open(path, "wb") as fh:
            fh.write(b'{"magic": "nope"}\n')
        self._assert_corrupt_miss(store)

    def test_version_mismatch(self, store):
        store.put("verdict", "a" * 48, 1)
        path = store._path("verdict", "a" * 48)
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
            payload = fh.read()
        header["version"] = CACHE_VERSION + 1
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode() + b"\n" + payload)
        self._assert_corrupt_miss(store)

    def test_checksum_mismatch(self, store):
        store.put("verdict", "a" * 48, 1)
        path = store._path("verdict", "a" * 48)
        with open(path, "rb") as fh:
            header = fh.readline()
            payload = fh.read()
        with open(path, "wb") as fh:
            fh.write(header + payload[:-1] + bytes([payload[-1] ^ 0xFF]))
        self._assert_corrupt_miss(store)

    def test_not_json_header(self, store):
        store.put("verdict", "a" * 48, 1)
        with open(store._path("verdict", "a" * 48), "wb") as fh:
            fh.write(b"\x00\x01garbage")
        self._assert_corrupt_miss(store)

    def test_corrupt_helper_truncates_every_entry(self, store):
        store.put("verdict", "a" * 48, 1)
        store.put("substrate", "b" * 48, {"x": list(range(100))})
        assert corrupt_store_for_testing(store.root) == 2
        assert store.get("verdict", "a" * 48) is None
        assert store.get("substrate", "b" * 48) is None

    def test_corruption_counts_in_stats(self, store):
        store.put("verdict", "a" * 48, 1)
        corrupt_store_for_testing(store.root)
        store.get("verdict", "a" * 48)
        stats = store.stats()
        assert stats["corrupt"] == 1


class TestStatsAndGc:
    def test_stats_shape(self, store):
        store.put("verdict", "a" * 48, 1)
        store.get("verdict", "a" * 48)
        store.get("verdict", "b" * 48)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["by_kind"]["verdict"]["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert 0 < stats["hit_rate"] < 1

    def test_gc_by_age_evicts_everything_at_zero(self, store):
        store.put("verdict", "a" * 48, 1)
        store.put("verdict", "b" * 48, 2)
        time.sleep(0.01)
        result = store.gc(max_age_days=0)
        assert result["removed"] == 2
        assert store.get("verdict", "a" * 48) is None

    def test_gc_by_bytes_keeps_most_recent(self, store):
        store.put("verdict", "a" * 48, 1)
        store.put("verdict", "b" * 48, 2)
        store.get("verdict", "b" * 48)  # touch: b is most recently used
        one_entry = store.stats()["bytes"] // 2 + 1
        result = store.gc(max_bytes=one_entry)
        assert result["removed"] == 1
        assert store.get("verdict", "b" * 48) == 2

    def test_gc_noop_without_limits(self, store):
        store.put("verdict", "a" * 48, 1)
        assert store.gc()["removed"] == 0

    def test_gc_lru_ties_break_by_insertion_order(self, tmp_path, monkeypatch):
        """Same last-used timestamp: the earliest-inserted entry goes first.

        Wall-clock timestamps have coarse resolution, so entries written in
        one burst tie on ``last_used``; without the monotonic sequence
        tie-breaker the eviction order depended on filesystem listing order
        and differed run to run.
        """
        import repro.cache.store as store_mod

        monkeypatch.setattr(store_mod.time, "time", lambda: 1_000_000.0)
        store = SubstrateStore(str(tmp_path / "cache"))
        try:
            for key_char in ("a", "b", "c"):
                store.put("verdict", key_char * 48, key_char)
            budget = (store.stats()["bytes"] // 3) * 2 + 1  # room for two
            result = store.gc(max_bytes=budget)
            assert result["removed"] == 1
            assert store.get("verdict", "a" * 48) is None  # oldest insert
            assert store.get("verdict", "b" * 48) == "b"
            assert store.get("verdict", "c" * 48) == "c"
        finally:
            store.close()

    def test_gc_seq_survives_reopen(self, tmp_path, monkeypatch):
        """The sequence counter persists: entries from a previous process
        still order before a reopened store's new ones on tied timestamps."""
        import repro.cache.store as store_mod

        monkeypatch.setattr(store_mod.time, "time", lambda: 1_000_000.0)
        root = str(tmp_path / "cache")
        store = SubstrateStore(root)
        store.put("verdict", "a" * 48, "a")
        store.close()
        store = SubstrateStore(root)
        try:
            store.put("verdict", "b" * 48, "b")
            store.put("verdict", "c" * 48, "c")
            budget = (store.stats()["bytes"] // 3) * 2 + 1
            assert store.gc(max_bytes=budget)["removed"] == 1
            assert store.get("verdict", "a" * 48) is None
            assert store.get("verdict", "b" * 48) == "b"
        finally:
            store.close()

    def test_metadata_db_unusable_degrades(self, tmp_path):
        """A broken sqlite sidecar must never break the object store."""
        root = tmp_path / "cache"
        store = SubstrateStore(str(root))
        store.put("verdict", "a" * 48, 1)
        store.close()
        (root / "meta.sqlite").write_bytes(b"not a database")
        store2 = SubstrateStore(str(root))
        with obs.Recorder() as rec:
            assert store2.get("verdict", "a" * 48) == 1
        assert any("metadata db unusable" in w for w in rec.warnings())
        store2.close()


class TestEnvHelper:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "/env/dir")
        assert cache_dir_from_env("/flag/dir") == "/flag/dir"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "/env/dir")
        assert cache_dir_from_env(None) == "/env/dir"

    def test_disabled_without_either(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_dir_from_env(None) is None
