"""The diagnostics hook bus: emission, stage timing, the Recorder."""

from __future__ import annotations

import pytest

from repro import obs


class TestHooks:
    def test_emit_reaches_installed_hooks_in_order(self):
        seen = []
        first = seen.append
        second = lambda e: seen.append(("second", e.kind))  # noqa: E731
        obs.add_hook(first)
        obs.add_hook(second)
        try:
            obs.emit_warning("w1", stage="refutation")
        finally:
            obs.remove_hook(first)
            obs.remove_hook(second)
        assert seen[0].message == "w1"
        assert seen[1] == ("second", obs.WARNING)

    def test_emit_without_hooks_is_a_noop(self):
        obs.emit_warning("nobody is listening")  # must not raise

    def test_remove_unknown_hook_warns_installed_listeners(self):
        # unbalanced removal is a consumer bug: with listeners installed it
        # must be surfaced as a warning event, not swallowed
        with obs.Recorder() as rec:
            obs.remove_hook(lambda e: None)
        assert len(rec.events) == 1
        warning = rec.events[0]
        assert warning.kind == obs.WARNING
        assert "not installed" in warning.message

    def test_remove_unknown_hook_without_listeners_is_a_noop(self):
        obs.remove_hook(lambda e: None)  # nobody to warn; must not raise

    def test_hook_exceptions_propagate(self):
        def broken(event):
            raise RuntimeError("consumer bug")

        obs.add_hook(broken)
        try:
            with pytest.raises(RuntimeError, match="consumer bug"):
                obs.emit_warning("boom")
        finally:
            obs.remove_hook(broken)


class TestStage:
    def test_stage_emits_start_and_end_with_seconds(self):
        with obs.Recorder() as rec:
            with obs.stage("hbg", app="x") as timer:
                pass
        assert timer.seconds >= 0
        kinds = [e.kind for e in rec.events]
        assert kinds == [obs.STAGE_START, obs.STAGE_END]
        end = rec.events[-1]
        assert end.stage == "hbg"
        assert end.seconds == timer.seconds
        assert end.detail == {"app": "x"}

    def test_stage_end_fires_even_when_the_block_raises(self):
        with obs.Recorder() as rec:
            with pytest.raises(ValueError):
                with obs.stage("cg_pa"):
                    raise ValueError("analysis died")
        assert [e.kind for e in rec.events] == [obs.STAGE_START, obs.STAGE_END]

    def test_stage_seconds_view(self):
        with obs.Recorder() as rec:
            with obs.stage("cg_pa"):
                pass
            with obs.stage("refutation"):
                pass
        assert set(rec.stage_seconds()) == {"cg_pa", "refutation"}

    def test_stage_seconds_sums_repeated_stages(self):
        # a stage that runs N times reports total time and a count of N —
        # last-wins would silently drop all but the final occurrence
        with obs.Recorder() as rec:
            durations = []
            for _ in range(3):
                with obs.stage("pointsto") as timer:
                    pass
                durations.append(timer.seconds)
        assert rec.stage_seconds()["pointsto"] == pytest.approx(sum(durations))
        assert rec.stage_counts() == {"pointsto": 3}


class TestRecorder:
    def test_recorder_uninstalls_on_exit(self):
        with obs.Recorder() as rec:
            obs.emit_warning("inside")
        obs.emit_warning("outside")
        assert rec.warnings() == ["inside"]

    def test_recorder_exit_is_idempotent(self):
        rec = obs.Recorder()
        rec.__enter__()
        rec.__exit__(None, None, None)
        # a second exit must not warn about unbalanced removal or raise
        with obs.Recorder() as watcher:
            rec.__exit__(None, None, None)
        assert watcher.events == []

    def test_degraded_flag_and_views(self):
        with obs.Recorder() as rec:
            obs.emit_warning("pool crashed", stage="refutation", attempt=1)
            obs.emit_degraded("fell back to serial", stage="refutation")
        assert rec.degraded
        assert rec.warnings() == ["pool crashed"]
        assert rec.degradations() == ["fell back to serial"]

    def test_to_dicts_is_json_ready(self):
        import json

        with obs.Recorder() as rec:
            with obs.stage("hbg"):
                obs.emit_degraded("d", stage="hbg", cause="x")
        dicts = rec.to_dicts()
        json.dumps(dicts)  # round-trippable
        # subset check: stage events also carry span identity (span_id,
        # ts, pid) for the trace exporter
        assert dicts[0]["kind"] == "stage_start"
        assert dicts[0]["stage"] == "hbg"
        assert dicts[0]["span_id"]
        assert dicts[1]["detail"] == {"cause": "x"}
        assert "seconds" in dicts[2]

    def test_pipeline_fires_stage_events(self, quickstart_apk):
        from repro.core import Sierra, SierraOptions

        with obs.Recorder() as rec:
            Sierra(SierraOptions()).analyze(quickstart_apk)
        stages = rec.stage_seconds()
        assert set(stages) == {"cg_pa", "hbg", "refutation"}
        assert not rec.degraded
