"""Tests for :mod:`repro.obs.telemetry`: the Prometheus text exposition
(validated by a strict line-level parser, not substring checks), the
ring-buffer sampler, and the SLO watchdog."""

from __future__ import annotations

import math
import re
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    SloObjective,
    SloWatchdog,
    TelemetrySampler,
    default_objectives,
    escape_help,
    escape_label_value,
    labeled_scrape,
    nan_to_none,
    objectives_with_overrides,
    prometheus_name,
    render_prometheus,
)

# ----------------------------------------------------------------------
# a strict exposition-format parser (the test's teeth)
# ----------------------------------------------------------------------
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|NaN|\+Inf|-Inf))$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_exposition(text):
    """Parse format 0.0.4 strictly, line by line.

    Returns ``{base_name: {"type": ..., "samples": [(name, labels, value)]}}``
    and raises AssertionError on any malformed line, sample without a
    preceding TYPE, or bad label syntax.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    typed = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name = rest.split(" ", 1)[0]
            assert _METRIC_NAME.match(name), f"bad HELP name: {line!r}"
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert _METRIC_NAME.match(name), f"bad TYPE name: {line!r}"
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed[name] = kind
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        labels = {}
        if match.group("labels") is not None:
            for part in match.group("labels").split(","):
                label = _LABEL.match(part)
                assert label, f"malformed label in: {line!r}"
                labels[label.group("key")] = label.group("value")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        assert base in typed, f"sample {name!r} has no preceding # TYPE"
        if typed[base] == "histogram":
            assert name != base, "histogram exposes only _bucket/_sum/_count"
        value = match.group("value")
        parsed = float("nan") if value == "NaN" else float(value.replace("+Inf", "inf"))
        families[base]["samples"].append((name, labels, parsed))
    return families


def _check_histogram(family, base):
    buckets = [s for s in family["samples"] if s[0] == f"{base}_bucket"]
    assert buckets, f"{base}: no bucket series"
    assert buckets[-1][1]["le"] == "+Inf", f"{base}: buckets must end at +Inf"
    bounds = []
    counts = []
    for _, labels, value in buckets:
        assert set(labels) == {"le"}
        bounds.append(
            float("inf") if labels["le"] == "+Inf" else float(labels["le"])
        )
        counts.append(value)
    assert bounds == sorted(bounds), f"{base}: le bounds must increase"
    assert counts == sorted(counts), f"{base}: cumulative counts must be monotone"
    count = [s for s in family["samples"] if s[0] == f"{base}_count"]
    total = [s for s in family["samples"] if s[0] == f"{base}_sum"]
    assert len(count) == 1 and len(total) == 1
    assert buckets[-1][2] == count[0][2], f"{base}: +Inf bucket != _count"
    return counts, count[0][2], total[0][2]


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------
def test_prometheus_exposition_parses_strictly():
    reg = MetricsRegistry()
    reg.counter("serve.requests", "HTTP requests served").inc(7)
    reg.gauge("serve.queue_depth", "queued jobs").set(3)
    hist = reg.histogram(
        "serve.job_seconds", "per-job wall clock", buckets=(0.1, 1.0, 5.0)
    )
    for value in (0.05, 0.5, 0.5, 2.0, 9.0):
        hist.observe(value)

    text = render_prometheus(reg)
    families = parse_exposition(text)

    assert families["serve_requests"]["type"] == "counter"
    assert families["serve_requests"]["samples"] == [("serve_requests", {}, 7.0)]
    assert families["serve_queue_depth"]["type"] == "gauge"
    assert families["serve_queue_depth"]["samples"][0][2] == 3.0

    counts, total_count, total_sum = _check_histogram(
        families["serve_job_seconds"], "serve_job_seconds"
    )
    # 1 obs <= 0.1, 3 <= 1.0, 4 <= 5.0, 5 <= +Inf
    assert counts == [1.0, 3.0, 4.0, 5.0]
    assert total_count == 5.0
    assert total_sum == pytest.approx(12.05)


def test_prometheus_empty_histogram_renders_zero_buckets_not_nan():
    reg = MetricsRegistry()
    reg.histogram("empty.hist", buckets=(1.0, 2.0))
    families = parse_exposition(render_prometheus(reg))
    counts, total_count, total_sum = _check_histogram(
        families["empty_hist"], "empty_hist"
    )
    assert counts == [0.0, 0.0, 0.0]
    assert total_count == 0.0 and total_sum == 0.0


def test_prometheus_name_sanitization():
    assert prometheus_name("serve.request_seconds.p99") == "serve_request_seconds_p99"
    assert prometheus_name("9lives") == "_9lives"
    assert prometheus_name("a-b c") == "a_b_c"
    assert _METRIC_NAME.match(prometheus_name("涼.metric"))


def test_help_and_label_escaping():
    assert escape_help("a\\b\nc") == "a\\\\b\\nc"
    assert escape_label_value('say "hi"\n\\') == 'say \\"hi\\"\\n\\\\'
    reg = MetricsRegistry()
    reg.counter("weird.help", "line one\nline \\two").inc()
    text = render_prometheus(reg)
    assert "# HELP weird_help line one\\nline \\\\two" in text
    parse_exposition(text)  # still one physical line per record


def test_content_type_names_format_version():
    assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
    assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


def test_labeled_scrape_carries_identity():
    reg = MetricsRegistry()
    reg.counter("x.y").inc(2)
    t0 = time.monotonic() - 5.0
    scrape = labeled_scrape(reg, started_monotonic=t0)
    assert scrape["x.y"]["value"] == 2
    assert isinstance(scrape["pid"], int)
    assert scrape["uptime_seconds"] >= 5.0
    assert isinstance(scrape["scrape_monotonic"], float)


# ----------------------------------------------------------------------
# nan -> gap plumbing
# ----------------------------------------------------------------------
def test_nan_to_none_is_a_gap_not_a_zero():
    assert nan_to_none(float("nan")) is None
    assert nan_to_none(None) is None
    assert nan_to_none(0.0) == 0.0
    assert nan_to_none(1.5) == 1.5


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------
def test_sampler_bounds_memory_and_orders_samples():
    ticks = {"n": 0}

    def source():
        ticks["n"] += 1
        return {"queue_depth": ticks["n"]}

    sampler = TelemetrySampler(source, interval_s=10.0, capacity=5)
    for _ in range(12):
        sampler.sample_once()
    assert len(sampler) == 5
    snap = sampler.snapshot()
    assert [s["queue_depth"] for s in snap] == [8, 9, 10, 11, 12]
    assert snap == sorted(snap, key=lambda s: s["monotonic"])
    assert sampler.snapshot(limit=2)[-1]["queue_depth"] == 12
    assert sampler.latest()["queue_depth"] == 12


def test_sampler_derives_apps_per_s_rate():
    done = iter([0, 10, 10])

    def source():
        return {"jobs_completed_total": next(done)}

    sampler = TelemetrySampler(source, interval_s=10.0, capacity=10)
    first = sampler.sample_once()
    assert first["apps_per_s"] is None  # no previous sample
    second = sampler.sample_once()
    assert second["apps_per_s"] > 0
    third = sampler.sample_once()
    assert third["apps_per_s"] == 0.0


def test_sampler_survives_a_broken_source():
    calls = {"n": 0}

    def source():
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("probe exploded")
        return {"ok": True}

    sampler = TelemetrySampler(source, interval_s=10.0, capacity=10)
    assert sampler.sample_once() is not None
    assert sampler.sample_once() is None
    assert sampler.sample_once() is not None
    assert sampler.dropped_samples == 1
    assert len(sampler) == 2


def test_sampler_background_thread_samples_and_stops():
    sampler = TelemetrySampler(lambda: {"v": 1}, interval_s=0.01, capacity=100)
    sampler.start()
    deadline = time.monotonic() + 5.0
    while len(sampler) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    sampler.stop()
    n = len(sampler)
    assert n >= 3
    time.sleep(0.05)
    assert len(sampler) == n  # stopped means stopped


def test_sampler_rejects_bad_config():
    with pytest.raises(ValueError):
        TelemetrySampler(lambda: {}, interval_s=0)
    with pytest.raises(ValueError):
        TelemetrySampler(lambda: {}, capacity=1)


# ----------------------------------------------------------------------
# SLO objectives + watchdog
# ----------------------------------------------------------------------
def test_default_objectives_scale_with_job_timeout():
    by_name = {o.name: o for o in default_objectives(job_timeout_s=10.0)}
    assert by_name["p99_job_latency"].threshold == 5.0
    assert by_name["worker_stall"].threshold == 40.0
    assert set(by_name) == {
        "p99_job_latency", "queue_wait", "failure_ratio", "worker_stall",
    }


def test_objectives_with_overrides():
    by_name = {
        o.name: o
        for o in objectives_with_overrides(
            overrides={
                "queue_wait": 30,
                "worker_stall.window_s": 5,
                "failure_ratio.min_events": 2,
            }
        )
    }
    assert by_name["queue_wait"].threshold == 30.0
    assert by_name["worker_stall"].window_s == 5.0
    assert by_name["failure_ratio"].min_events == 2

    with pytest.raises(ValueError, match="unknown SLO objective"):
        objectives_with_overrides(overrides={"nonesuch": 1})
    with pytest.raises(ValueError, match="unknown SLO field"):
        objectives_with_overrides(overrides={"queue_wait.color": 1})


def _fed_sampler(samples):
    """A sampler pre-loaded with the given source dicts."""
    feed = iter(samples)
    sampler = TelemetrySampler(lambda: next(feed), interval_s=10.0, capacity=100)
    for _ in samples:
        sampler.sample_once()
    return sampler


def test_watchdog_fires_on_sustained_breach_not_one_spike():
    objective = SloObjective(
        name="latency", metric="p99_s", threshold=1.0,
        window_s=60.0, burn_threshold=0.5, min_samples=3,
    )
    spike = _fed_sampler([{"p99_s": 0.1}, {"p99_s": 5.0}, {"p99_s": 0.1}])
    dog = SloWatchdog(spike, objectives=(objective,))
    status = dog.evaluate_once()
    assert status["status"] == "ok"  # 1/3 violating < 0.5 burn

    breach = _fed_sampler([{"p99_s": 5.0}, {"p99_s": 4.0}, {"p99_s": 0.1}, {"p99_s": 6.0}])
    dog = SloWatchdog(breach, objectives=(objective,))
    status = dog.evaluate_once()
    assert status["status"] == "degraded"
    (violation,) = status["violations"]
    assert violation["objective"] == "latency"
    assert violation["burn_rate"] == 0.75
    assert violation["threshold"] == 1.0
    assert violation["since_utc"]


def test_watchdog_needs_min_samples():
    objective = SloObjective(
        name="latency", metric="p99_s", threshold=1.0, min_samples=3,
    )
    sampler = _fed_sampler([{"p99_s": 9.0}, {"p99_s": 9.0}])
    dog = SloWatchdog(sampler, objectives=(objective,))
    assert dog.evaluate_once()["status"] == "ok"


def test_watchdog_ignores_gaps_in_the_metric():
    objective = SloObjective(
        name="latency", metric="p99_s", threshold=1.0, min_samples=3,
    )
    # None/missing values (empty-histogram gaps) must not count as samples
    sampler = _fed_sampler(
        [{"p99_s": None}, {"other": 1}, {"p99_s": 9.0}, {"p99_s": 9.0}]
    )
    dog = SloWatchdog(sampler, objectives=(objective,))
    assert dog.evaluate_once()["status"] == "ok"


def test_watchdog_failure_ratio_needs_min_events():
    objective = SloObjective(
        name="failure_ratio", metric="failure_ratio", threshold=0.5,
        min_events=5,
    )
    quiet = _fed_sampler(
        [{"jobs_done": 0, "jobs_failed": 0}, {"jobs_done": 0, "jobs_failed": 1}]
    )
    dog = SloWatchdog(quiet, objectives=(objective,))
    assert dog.evaluate_once()["status"] == "ok"  # one failure, idle daemon

    bad = _fed_sampler(
        [{"jobs_done": 0, "jobs_failed": 0}, {"jobs_done": 1, "jobs_failed": 5}]
    )
    dog = SloWatchdog(bad, objectives=(objective,))
    status = dog.evaluate_once()
    assert status["status"] == "degraded"
    assert status["violations"][0]["value"] == pytest.approx(5 / 6)


def test_watchdog_alert_transitions_fire_and_resolve():
    objective = SloObjective(
        name="depth", metric="queue_depth", threshold=10.0,
        min_samples=1, burn_threshold=0.5, window_s=0.5,
    )
    feed = {"queue_depth": 50}
    sampler = TelemetrySampler(lambda: dict(feed), interval_s=10.0, capacity=10)
    alerts = []
    dog = SloWatchdog(
        sampler, objectives=(objective,), on_alert=lambda k, v: alerts.append((k, v))
    )

    sampler.sample_once()
    dog.evaluate_once()
    dog.evaluate_once()  # still firing: no duplicate transition
    assert [k for k, _ in alerts] == ["firing"]
    since = alerts[0][1]["since_utc"]
    assert dog.status()["violations"][0]["since_utc"] == since

    time.sleep(0.6)  # let the breach age out of the window
    feed["queue_depth"] = 0
    sampler.sample_once()
    dog.evaluate_once()
    assert [k for k, _ in alerts] == ["firing", "resolved"]
    assert dog.status()["status"] == "ok"


def test_watchdog_background_thread_lifecycle():
    sampler = TelemetrySampler(lambda: {"v": 99}, interval_s=0.01, capacity=50)
    objective = SloObjective(
        name="v", metric="v", threshold=1.0, min_samples=1, window_s=30.0,
    )
    sampler.start()
    dog = SloWatchdog(sampler, objectives=(objective,), interval_s=0.01)
    dog.start()
    deadline = time.monotonic() + 5.0
    while dog.status()["status"] == "ok" and time.monotonic() < deadline:
        time.sleep(0.01)
    dog.stop()
    sampler.stop()
    assert dog.status()["status"] == "degraded"
