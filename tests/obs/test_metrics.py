"""The typed metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("x.ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("x.ops").inc(-1)

    def test_reregistration_returns_same_instrument(self, registry):
        a = registry.counter("x.ops", "help once")
        b = registry.counter("x.ops")
        assert a is b
        a.inc()
        assert registry.value("x.ops") == 1


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("x.level")
        g.set(10)
        g.inc(-3)
        assert g.value == 7


class TestHistogram:
    def test_observe_updates_stats(self, registry):
        h = registry.histogram("x.sizes", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 555
        assert h.mean() == 185.0
        d = h.to_dict()
        assert d["min"] == 5 and d["max"] == 500
        assert d["buckets"] == {"10": 1, "100": 1, "+Inf": 1}

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("x.bad", buckets=(10, 1))

    def test_scrape_value_is_sum(self, registry):
        h = registry.histogram("x.sizes")
        h.observe(2)
        h.observe(3)
        assert registry.value("x.sizes") == 5


class TestRegistry:
    def test_type_conflict_raises(self, registry):
        registry.counter("x.ops")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x.ops")

    def test_value_of_unregistered_metric_defaults(self, registry):
        assert registry.value("never.registered") == 0
        assert registry.value("never.registered", default=-1) == -1

    def test_totals_is_flat_and_sorted(self, registry):
        registry.counter("b.ops").inc(2)
        registry.gauge("a.level").set(1)
        assert registry.totals() == {"a.level": 1, "b.ops": 2}

    def test_collect_is_json_ready_with_help(self, registry):
        registry.counter("x.ops", "operations").inc()
        h = registry.histogram("x.sizes")
        h.observe(7)
        snapshot = registry.collect()
        json.dumps(snapshot)
        assert snapshot["x.ops"] == {"type": "counter", "value": 1, "help": "operations"}
        assert snapshot["x.sizes"]["type"] == "histogram"

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        c = registry.counter("x.ops", "kept")
        c.inc(9)
        registry.reset()
        assert registry.names() == ["x.ops"]
        assert registry.value("x.ops") == 0
        assert registry.get("x.ops") is c and c.help == "kept"


class TestPipelineIntegration:
    def test_analyze_opens_a_fresh_scrape_window(self, quickstart_apk):
        from repro.core import Sierra, SierraOptions

        metrics.counter("stale.from.before").inc(99)
        Sierra(SierraOptions()).analyze(quickstart_apk)
        reg = metrics.registry()
        assert reg.value("stale.from.before") == 0
        assert reg.value("sierra.actions") > 0
        assert reg.value("hb.closure_ops") > 0
        assert reg.value("pointsto.worklist_iterations") > 0
        assert reg.value("refutation.candidates") > 0

    def test_counters_match_report(self, quickstart_apk):
        from repro.core import Sierra, SierraOptions

        result = Sierra(SierraOptions()).analyze(quickstart_apk)
        reg = metrics.registry()
        assert reg.value("sierra.actions") == result.report.actions
        assert reg.value("sierra.hb_edges") == result.report.hb_edges
        assert (
            reg.value("refutation.nodes_expanded")
            == result.report.refutation_stats["nodes_expanded"]
        )


class TestHistogramPercentile:
    """Edge cases of the bucket-interpolated percentile estimator."""

    def test_empty_histogram_answers_nan_not_zero(self, registry):
        # 0.0 would plot as a real latency on a telemetry panel; "no
        # data" must stay distinguishable from "observed zero"
        h = registry.histogram("x.sizes")
        assert math.isnan(h.percentile(0))
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.percentile(100))
        h.observe(3)
        assert h.percentile(50) == 3.0  # data arrives -> real answers again
        h.reset()
        assert math.isnan(h.percentile(99))

    def test_single_sample_answers_that_sample_for_every_q(self, registry):
        h = registry.histogram("x.sizes")
        h.observe(42)
        for q in (0, 1, 50, 99, 100):
            assert h.percentile(q) == 42.0

    def test_identical_samples_need_no_interpolation(self, registry):
        h = registry.histogram("x.sizes")
        for _ in range(10):
            h.observe(7)
        assert h.percentile(50) == 7.0

    def test_interpolates_within_a_bucket(self, registry):
        h = registry.histogram("x.sizes", buckets=(0, 100))
        for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            h.observe(value)
        # all ten land in the (0, 100] bucket; the median interpolates to
        # the bucket's midpoint, not to an edge
        assert 40.0 <= h.percentile(50) <= 60.0
        assert h.percentile(10) < h.percentile(90)

    def test_clamped_to_observed_range(self, registry):
        h = registry.histogram("x.sizes", buckets=(1000,))
        h.observe(3)
        h.observe(5)
        # the bucket bound (1000) must not leak into the estimate
        assert 3.0 <= h.percentile(0) <= h.percentile(100) <= 5.0

    def test_inf_bucket_bounded_by_observed_max(self, registry):
        h = registry.histogram("x.sizes", buckets=(10,))
        for value in (5, 2_000_000, 3_000_000):
            h.observe(value)
        assert h.percentile(100) == 3_000_000.0
        assert h.percentile(99) <= 3_000_000.0

    def test_out_of_range_q_rejected(self, registry):
        h = registry.histogram("x.sizes")
        for q in (-1, 101):
            with pytest.raises(ValueError, match="out of range"):
                h.percentile(q)


class TestScrapeWindowEdges:
    """reset_run interacting with live spans and the refutation pool."""

    def test_reset_during_active_span_keeps_post_reset_observations(self):
        from repro import obs

        metrics.counter("window.before").inc(5)
        with obs.span("edge-case-span"):
            metrics.reset_run()  # a new scrape window opens mid-span
            metrics.counter("window.after").inc(3)
        reg = metrics.registry()
        # pre-reset effort is gone, post-reset effort survives the span end,
        # and the span itself neither crashed nor resurrected old values
        assert reg.value("window.before") == 0
        assert reg.value("window.after") == 3

    def test_gauge_last_write_wins_under_fork_refutation_pool(self, quickstart_apk):
        """Parallel refutation forks workers; gauges must reflect the
        parent's final report (one write, after the pool joins), not a
        worker's partial view — serial and parallel scrapes agree."""
        from repro.core import Sierra, SierraOptions

        serial = Sierra(SierraOptions(parallelism=1)).analyze(quickstart_apk)
        serial_scrape = {
            name: metrics.registry().value(name)
            for name in ("sierra.races_reported", "sierra.racy_pairs")
        }
        parallel = Sierra(SierraOptions(parallelism=2)).analyze(quickstart_apk)
        reg = metrics.registry()
        assert reg.value("sierra.races_reported") == (
            parallel.report.races_after_refutation
        )
        parallel_scrape = {
            name: reg.value(name)
            for name in ("sierra.races_reported", "sierra.racy_pairs")
        }
        assert serial_scrape == parallel_scrape
        assert serial.report.races_after_refutation == (
            parallel.report.races_after_refutation
        )

    def test_gauge_set_is_last_write_wins(self, registry):
        g = registry.gauge("x.level")
        for value in (10, 3, 7):
            g.set(value)
        assert g.value == 7
