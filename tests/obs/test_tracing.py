"""Hierarchical spans and Chrome trace-event export.

Covers the span tree (nesting, parent ids, cross-process reattachment of
refutation pool-worker spans) and the trace-schema validator the perf
gate runs against every emitted trace.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs


class TestSpanTree:
    def test_nested_spans_carry_parent_ids(self):
        with obs.Recorder() as rec:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        starts = [e for e in rec.events if e.kind == obs.SPAN_START]
        outer, inner = starts
        assert outer.stage == "outer" and outer.parent_id is None
        assert inner.stage == "inner" and inner.parent_id == outer.span_id
        assert outer.span_id != inner.span_id

    def test_spans_nest_under_stages(self):
        with obs.Recorder() as rec:
            with obs.stage("hbg"):
                with obs.span("hb.rule.R1"):
                    pass
        stage_start = next(e for e in rec.events if e.kind == obs.STAGE_START)
        span_start = next(e for e in rec.events if e.kind == obs.SPAN_START)
        assert stage_start.span_id
        assert span_start.parent_id == stage_start.span_id

    def test_span_end_carries_attributes_and_seconds(self):
        with obs.Recorder() as rec:
            with obs.span("work", n=3) as sp:
                sp.set(edges_added=7)
        end = next(e for e in rec.events if e.kind == obs.SPAN_END)
        assert end.detail == {"n": 3, "edges_added": 7}
        assert end.seconds is not None and end.seconds >= 0
        assert end.span_id and end.ts is not None and end.pid == os.getpid()

    def test_span_without_hooks_still_times(self):
        # no Recorder installed: the fast path must mint no ids but keep
        # the StageTimer contract (detector reads .seconds)
        with obs.span("quiet") as sp:
            pass
        assert sp.seconds >= 0
        assert sp.span_id is None

    def test_events_round_trip_through_dicts(self):
        with obs.Recorder() as rec:
            with obs.span("outer", k="v"):
                pass
        dicts = rec.to_dicts()
        json.dumps(dicts)
        with obs.Recorder() as rec2:
            obs.reemit(dicts)
        assert [e.span_id for e in rec2.events] == [e.span_id for e in rec.events]
        assert [e.ts for e in rec2.events] == [e.ts for e in rec.events]


class TestWorkerSpanReattachment:
    """Satellite: spans emitted inside ``_refute_parallel`` pool workers
    must reattach to the parent's span tree with correct parent ids."""

    def test_pool_worker_spans_parent_onto_refutation_stage(self, opensudoku_apk):
        from repro.core import Sierra, SierraOptions

        with obs.Recorder() as rec:
            Sierra(SierraOptions(parallelism=2)).analyze(opensudoku_apk)
        ref_stage = next(
            e
            for e in rec.events
            if e.kind == obs.STAGE_START and e.stage == "refutation"
        )
        chunk_starts = [
            e
            for e in rec.events
            if e.kind == obs.SPAN_START and e.stage == "refute.chunk"
        ]
        assert chunk_starts, "pool workers shipped no chunk spans"
        # worker spans run in other pids yet parent onto the stage that was
        # open at fork time — ids are pid-prefixed so no collisions
        assert all(e.pid != os.getpid() for e in chunk_starts)
        assert all(e.parent_id == ref_stage.span_id for e in chunk_starts)

        by_id = {e.span_id: e for e in rec.events if e.span_id}
        candidates = [
            e
            for e in rec.events
            if e.kind == obs.SPAN_START and e.stage == "refute.candidate"
            and e.pid != os.getpid()
        ]
        assert candidates
        assert all(by_id[e.parent_id].stage == "refute.chunk" for e in candidates)


class TestTraceCollector:
    def _collect(self):
        collector = obs.TraceCollector(process_name="test")
        obs.add_hook(collector)
        try:
            with obs.stage("hbg", app="x"):
                with obs.span("hb.rule.R1"):
                    pass
                obs.emit_warning("w", stage="hbg")
        finally:
            obs.remove_hook(collector)
        return collector

    def test_emits_valid_chrome_trace(self, tmp_path):
        collector = self._collect()
        path = tmp_path / "trace.json"
        collector.write(str(path))
        assert obs.validate_trace_file(str(path)) == []
        data = json.loads(path.read_text())
        names = [e["name"] for e in data["traceEvents"] if e["ph"] in "BE"]
        assert names == ["hbg", "hb.rule.R1", "hb.rule.R1", "hbg"]

    def test_metadata_and_instants(self):
        collector = self._collect()
        events = collector.chrome_events()
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "test"
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["s"] == "t"
        assert instants[0]["args"]["message"] == "w"

    def test_span_ids_land_in_args(self):
        events = self._collect().chrome_events()
        rule_begin = next(
            e for e in events if e["name"] == "hb.rule.R1" and e["ph"] == "B"
        )
        assert rule_begin["args"]["span_id"]
        assert rule_begin["args"]["parent_id"]


class TestTraceValidator:
    def _ok_event(self, **over):
        event = {"name": "x", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1, "s": "t"}
        event.update(over)
        return event

    def test_accepts_object_and_array_forms(self):
        events = [self._ok_event()]
        assert obs.validate_chrome_trace({"traceEvents": events}) == []
        assert obs.validate_chrome_trace(events) == []

    def test_missing_required_keys(self):
        violations = obs.validate_chrome_trace([{"ph": "B", "ts": 0}])
        assert violations and "missing key" in violations[0]

    def test_metadata_exempt_from_ts(self):
        meta = {"name": "process_name", "ph": "M", "pid": 1, "tid": 1, "args": {}}
        assert obs.validate_chrome_trace([meta]) == []

    def test_backwards_timestamps_flagged(self):
        events = [self._ok_event(ts=5.0), self._ok_event(ts=2.0)]
        violations = obs.validate_chrome_trace(events)
        assert any("goes backwards" in v for v in violations)

    def test_unbalanced_begin_flagged(self):
        events = [self._ok_event(ph="B", name="open")]
        violations = obs.validate_chrome_trace(events)
        assert any("unclosed" in v for v in violations)

    def test_stray_end_flagged(self):
        events = [self._ok_event(ph="E", name="never-opened")]
        violations = obs.validate_chrome_trace(events)
        assert any("no open 'B'" in v for v in violations)

    def test_improper_nesting_flagged(self):
        events = [
            self._ok_event(ph="B", name="a", ts=0),
            self._ok_event(ph="B", name="b", ts=1),
            self._ok_event(ph="E", name="a", ts=2),
            self._ok_event(ph="E", name="b", ts=3),
        ]
        violations = obs.validate_chrome_trace(events)
        assert any("improper nesting" in v for v in violations)

    def test_non_numeric_ts_flagged(self):
        violations = obs.validate_chrome_trace([self._ok_event(ts="soon")])
        assert any("non-negative number" in v for v in violations)

    def test_unreadable_file_is_a_violation(self, tmp_path):
        assert obs.validate_trace_file(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert any(
            "not valid JSON" in v for v in obs.validate_trace_file(str(bad))
        )


class TestMemoryCapture:
    def test_memory_snapshot_attached_when_enabled(self):
        obs.set_memory_capture(True)
        try:
            with obs.Recorder() as rec:
                with obs.span("mem"):
                    pass
        finally:
            obs.set_memory_capture(False)
        end = next(e for e in rec.events if e.kind == obs.SPAN_END)
        assert end.mem is not None and end.mem["rss_peak_kb"] > 0
        # detail stays clean: memory rides in its own field
        assert "rss_peak_kb" not in end.detail

    def test_memory_capture_off_by_default(self):
        with obs.Recorder() as rec:
            with obs.span("mem"):
                pass
        end = next(e for e in rec.events if e.kind == obs.SPAN_END)
        assert end.mem is None
