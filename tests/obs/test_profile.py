"""Cost-attribution profiler: attribution conservation, flamegraph
round-trip, the provably-zero-cost disabled path, and serial == sharded
attribution equivalence.

The conservation tests pin the acceptance criterion of the profiler:
attributed unit costs must tile the measured stage spans (within
tolerance), so "where did the time go" always has an answer that sums
to the time that actually passed.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import load_app
from repro.core import Sierra, SierraOptions
from repro.obs import metrics
from repro.obs.profile import (
    STAGE_NAMES,
    Profiler,
    active,
    collapsed_stacks,
    parse_collapsed,
)

#: the acceptance app: big enough that every stage does real work
APP = "paper:K-9 Mail"

#: relative slack on conservation sums — attribution timers nest inside
#: the stage span, so sums may only undershoot plus timer jitter
REL_TOL = 0.10


@pytest.fixture(scope="module")
def profiled_result():
    return Sierra(SierraOptions(profile=True)).analyze(load_app(APP))


@pytest.fixture(scope="module")
def summary(profiled_result):
    summary = profiled_result.profile
    assert summary is not None
    return summary


class TestConservation:
    def test_attributes_at_least_ninety_percent_of_stage_walltime(self, summary):
        # the headline acceptance criterion: >= 90% of pointsto + hb +
        # refutation wall time lands on named semantic units
        assert summary["coverage"] >= 0.90

    def test_every_stage_present_with_valid_coverage(self, summary):
        assert set(summary["stages"]) == set(STAGE_NAMES)
        for name, stage in summary["stages"].items():
            assert stage["seconds"] > 0.0, name
            assert 0.0 <= stage["coverage"] <= 1.0
            assert stage["covered_s"] <= stage["seconds"] * (1.0 + REL_TOL)

    def test_unit_sums_tile_their_stage_spans(self, summary):
        # per-unit sums (full totals, not the top-K display cap) must
        # stay within the stage span they claim to explain
        stages, totals = summary["stages"], summary["totals"]
        slack = lambda s: stages[s]["seconds"] * (1.0 + REL_TOL) + 0.005
        assert totals["pointsto.method"]["seconds"] <= slack("cg_pa")
        assert totals["hb.rule"]["seconds"] <= slack("hbg")
        # refutation candidates overlap wall time under a fork pool, so
        # only the serial default (parallelism=1 fixture) can be tiled
        assert totals["refute.candidate"]["seconds"] <= slack("refutation")

    def test_context_sums_equal_method_sums(self, summary):
        # per-context rows are a re-bucketing of the same charges, not a
        # second measurement: identical grand totals
        a = summary["totals"]["pointsto.method"]["seconds"]
        b = summary["totals"]["pointsto.context"]["seconds"]
        assert b == pytest.approx(a, rel=1e-3, abs=1e-4)

    def test_self_overhead_measured_and_small(self, summary):
        total = sum(s["seconds"] for s in summary["stages"].values())
        assert 0.0 <= summary["self_overhead_s"] < max(total, 0.01)
        assert summary["charges"] > 0 and summary["events"] > 0


class TestFlamegraph:
    def test_round_trips_and_tiles_stage_seconds(self, summary):
        text = collapsed_stacks(summary)
        rows = parse_collapsed(text)
        assert rows, "flamegraph export is empty"
        per_stage = {}
        for frames, micros in rows:
            assert frames[0] == "sierra"
            assert micros >= 0
            per_stage[frames[1]] = per_stage.get(frames[1], 0) + micros
        # residual/unattributed frames make each stage subtree sum to the
        # measured span exactly (modulo per-line integer rounding)
        for name, stage in summary["stages"].items():
            got = per_stage[name] / 1e6
            assert got == pytest.approx(stage["seconds"], rel=0.02, abs=0.002)

    def test_frames_carry_no_separator_characters(self, summary):
        for frames, _micros in parse_collapsed(collapsed_stacks(summary)):
            for frame in frames:
                assert ";" not in frame and " " not in frame

    @pytest.mark.parametrize(
        "text",
        [
            "sierra;cg_pa",  # no count
            "sierra;cg_pa notanumber",  # non-integer count
            "sierra;cg_pa -12",  # negative count
            " 42",  # empty stack
        ],
    )
    def test_malformed_lines_are_rejected(self, text):
        with pytest.raises(ValueError):
            parse_collapsed(text)


class TestDisabledPath:
    def test_disabled_run_installs_no_hooks_and_mints_no_counters(self):
        before_hooks = len(obs.diagnostics._hooks)
        result = Sierra(SierraOptions()).analyze(load_app("quickstart"))
        assert result.profile is None
        assert active() is None
        assert len(obs.diagnostics._hooks) == before_hooks
        # the profiler keeps every tally internal: no registry series
        # exist for it whether it ran or not
        assert not [n for n in metrics.registry().names() if "profile" in n]

    def test_enabled_run_also_keeps_registry_clean(self, summary):
        assert not [n for n in metrics.registry().names() if "profile" in n]

    def test_profiler_uninstalled_after_profiled_run(self, profiled_result):
        assert active() is None
        assert not any(
            isinstance(h, Profiler) for h in obs.diagnostics._hooks
        )


class TestSerialEqualsSharded:
    def test_refutation_attribution_units_match(self):
        from repro.obs.profile import profiled

        apk = load_app(APP)

        def run(parallelism):
            # uncapped top_k: the display cap would make the comparison
            # depend on wall-clock ordering of the top 40 rows
            with profiled(top_k=1_000_000) as prof:
                Sierra(SierraOptions(parallelism=parallelism)).analyze(apk)
                return prof.summary(app=apk.name)

        serial, sharded = run(1), run(2)

        def units(summary, kind):
            return {row["name"]: row["count"] for row in summary["units"][kind]}

        # fork workers re-emit their candidate spans to the parent, so
        # the sharded run attributes the same candidates the same number
        # of times — wall seconds differ, the unit set must not
        for kind in ("refute.candidate", "refute.field"):
            assert units(serial, kind) == units(sharded, kind), kind
        assert serial["totals"]["refute.candidate"]["count"] == (
            sharded["totals"]["refute.candidate"]["count"]
        )
