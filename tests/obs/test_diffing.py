"""Differential run analysis, including the end-to-end acceptance
scenario: two ``--history`` runs on the same app, one race injected into
the second via the synth-corpus knobs, and ``repro diff`` naming exactly
that fingerprint as new (``--gate`` exits 1)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import Sierra, SierraOptions
from repro.corpus import SynthSpec, synthesize_app
from repro.obs.diffing import diff_runs, render_diff
from repro.obs.history import KIND_ANALYZE, RunLedger

#: the differential pair: identical apps except run B seeds one extra
#: unguarded event race (evrace 1 -> 2); everything else — names, seeds,
#: idiom counts — matches, so exactly one fingerprint is new in B
BASE_SPEC = dict(
    name="DiffApp", seed=7, activities=2, evrace=1, bgrace=1, guard=1,
    nullguard=1, ordered=1, factory=1, implicit=0, receivers=0, services=0,
)


def _record(db, spec_kwargs):
    apk, _truth = synthesize_app(SynthSpec(**spec_kwargs))
    result = Sierra(SierraOptions()).analyze(apk)
    with RunLedger(db) as ledger:
        run_id = ledger.begin_run(
            KIND_ANALYZE, dataclasses.asdict(SierraOptions()), meta={"app": apk.name}
        )
        ledger.record_analysis(run_id, apk.name, result)
    return run_id, result


@pytest.fixture(scope="module")
def injected_pair(tmp_path_factory):
    """Ledger with run A (baseline) and run B (one injected race)."""
    db = str(tmp_path_factory.mktemp("diff") / "h.db")
    run_a, result_a = _record(db, BASE_SPEC)
    run_b, result_b = _record(db, {**BASE_SPEC, "evrace": 2})
    return db, run_a, run_b, result_a, result_b


class TestInjectedRaceEndToEnd:
    def test_exactly_the_injected_fingerprint_is_new(self, injected_pair):
        db, run_a, run_b, result_a, result_b = injected_pair
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, run_a, run_b)
        assert len(diff.new_races) == 1
        assert diff.fixed_races == []
        new = diff.new_races[0]
        # the new fingerprint belongs to the seeded extra race and to no
        # race of run A
        fingerprints_a = {r.fingerprint for r in result_a.report.reports}
        assert new["fingerprint"] not in fingerprints_a
        assert new["field"].startswith("evrace_")
        assert len(diff.persisting_races) == len(result_a.report.reports)

    def test_gate_exits_one_and_names_the_race(self, injected_pair, capsys):
        from repro.cli import main

        db, run_a, run_b, _a, _b = injected_pair
        code = main(["diff", run_a, run_b, "--gate", "--history", db])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 new race" in out and "evrace_" in out
        # reversed, the same race reads as fixed and the gate passes
        assert main(["diff", run_b, run_a, "--gate", "--history", db]) == 0


def _profile_blob(method_s, rule_s, field_s):
    """Minimal attribution summary as record_analysis persists it."""
    return {
        "units": {
            "pointsto.method": [
                {"name": "Lcom/foo/Bar;->baz", "seconds": method_s, "count": 4}
            ],
            "extract.phase": [
                {"name": "extract.phaseA", "seconds": method_s / 2, "count": 1}
            ],
            "hb.rule": [
                {"name": "R6-transitivity", "seconds": rule_s, "count": 9}
            ],
            "refute.field": [
                {"name": "mAccount", "seconds": field_s, "count": 2}
            ],
        }
    }


class TestRegressionBlame:
    """A doctored ledger pair: run B is slower in every stage, and the
    per-unit attribution summaries name exactly which unit got slower —
    the diff must surface the unit, not just the stage."""

    @pytest.fixture()
    def blame_pair(self, tmp_path):
        from repro.obs.history import RunLedger

        db = str(tmp_path / "blame.db")
        with RunLedger(db) as ledger:
            run_a = ledger.begin_run(KIND_ANALYZE, {"k": 2})
            ledger.record_app(
                run_a, "slowapp", "ok", elapsed_s=1.0,
                stages={"cg_pa": 0.5, "hbg": 0.2, "refutation": 0.3},
                metrics={"profile": _profile_blob(0.4, 0.15, 0.25)},
            )
            run_b = ledger.begin_run(KIND_ANALYZE, {"k": 2})
            ledger.record_app(
                run_b, "slowapp", "ok", elapsed_s=1.9,
                stages={"cg_pa": 0.9, "hbg": 0.5, "refutation": 0.5},
                metrics={"profile": _profile_blob(0.74, 0.44, 0.45)},
            )
        return db, run_a, run_b

    def test_blame_names_the_regressed_unit_per_stage(self, blame_pair):
        db, run_a, run_b = blame_pair
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, run_a, run_b)
        by_stage = {d["stage"]: d for d in diff.stage_deltas}
        assert by_stage["cg_pa"]["blame"][0] == {
            "kind": "pointsto.method",
            "unit": "Lcom/foo/Bar;->baz",
            "delta_s": pytest.approx(0.34),
        }
        assert by_stage["hbg"]["blame"][0]["unit"] == "R6-transitivity"
        assert by_stage["refutation"]["blame"][0]["unit"] == "mAccount"

    def test_render_prints_blame_lines(self, blame_pair):
        db, run_a, run_b = blame_pair
        with RunLedger(db) as ledger:
            text = render_diff(diff_runs(ledger, run_a, run_b))
        assert "blame: pointsto.method Lcom/foo/Bar;->baz +0.340s" in text

    def test_unprofiled_runs_diff_without_blame(self, tmp_path):
        from repro.obs.history import RunLedger

        db = str(tmp_path / "plain.db")
        with RunLedger(db) as ledger:
            run_a = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_a, "app", "ok", 1.0, stages={"cg_pa": 0.5})
            run_b = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_b, "app", "ok", 2.0, stages={"cg_pa": 1.5})
            diff = diff_runs(ledger, run_a, run_b)
        (delta,) = diff.stage_deltas
        assert delta["regression"] and "blame" not in delta

    def test_json_output_round_trips(self, injected_pair, capsys):
        import json

        from repro.cli import main

        db, run_a, run_b, _a, _b = injected_pair
        assert main(["diff", run_a, run_b, "--json", "--history", db]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clean"] is False
        assert len(data["new_races"]) == 1
        assert data["run_a"] == run_a and data["run_b"] == run_b


class TestThresholds:
    @staticmethod
    def _ledger_with_stage_times(db, a_s, b_s):
        from repro.obs.history import KIND_BENCH

        with RunLedger(db) as ledger:
            for seconds in (a_s, b_s):
                run_id = ledger.begin_run(KIND_BENCH, {})
                ledger.record_app(run_id, "app", stages={"cg_pa": seconds})
        return ledger

    def test_slowdown_within_noise_not_flagged(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._ledger_with_stage_times(db, 1.0, 1.2)  # +20% < 25% threshold
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, "latest~1", "latest")
        assert diff.timing_regressions == []
        assert diff.clean

    def test_slowdown_beyond_threshold_flagged(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._ledger_with_stage_times(db, 1.0, 1.5)
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, "latest~1", "latest")
        assert len(diff.timing_regressions) == 1
        assert diff.gate_exit_code() == 1

    def test_sub_floor_stages_never_regress(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._ledger_with_stage_times(db, 0.001, 0.004)  # 4x but microseconds
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, "latest~1", "latest")
        assert diff.timing_regressions == []

    def test_custom_threshold(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._ledger_with_stage_times(db, 1.0, 1.2)
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, "latest~1", "latest", time_threshold=0.1)
        assert len(diff.timing_regressions) == 1

    def test_speedup_is_reported_but_not_gated(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._ledger_with_stage_times(db, 2.0, 1.0)
        with RunLedger(db) as ledger:
            diff = diff_runs(ledger, "latest~1", "latest")
        assert diff.stage_deltas and diff.timing_regressions == []
        assert diff.clean


class TestVerdictFlips:
    def test_flip_detected_on_persisting_race(self, tmp_path):
        db = str(tmp_path / "h.db")
        race = {
            "fingerprint": "f" * 16, "rank": 1, "field": "mX", "kind": "event",
            "tier": "app", "priority": 9, "verdict": "survived", "report": {},
        }
        with RunLedger(db) as ledger:
            run_a = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_a, "app", races=[race])
            run_b = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(
                run_b, "app",
                races=[{**race, "verdict": "survived-budget-exceeded"}],
            )
            diff = diff_runs(ledger, run_a, run_b)
        assert diff.new_races == []
        assert len(diff.verdict_flips) == 1
        flip = diff.verdict_flips[0]
        assert flip["verdict_a"] == "survived"
        assert flip["verdict_b"] == "survived-budget-exceeded"
        assert "verdict flip" in render_diff(diff)


class TestRenderDiff:
    def test_clean_render_says_so(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            for _ in range(2):
                run_id = ledger.begin_run(KIND_ANALYZE, {"k": 2})
                ledger.record_app(run_id, "app", stages={"cg_pa": 1.0})
            diff = diff_runs(ledger, "latest~1", "latest")
        text = render_diff(diff)
        assert "clean: no new races, no timing regressions" in text
        assert diff.options_changed is False

    def test_option_change_warned(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            for k in (1, 2):
                ledger.begin_run(KIND_ANALYZE, {"k": k})
            diff = diff_runs(ledger, "latest~1", "latest")
        assert diff.options_changed is True
        assert "options differ" in render_diff(diff)

    def test_coverage_change_warned(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run_a = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_a, "app1")
            run_b = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_b, "app2")
            diff = diff_runs(ledger, run_a, run_b)
        assert diff.apps_only_a == ["app1"]
        assert diff.apps_only_b == ["app2"]
        assert "only in run" in render_diff(diff)

    def test_slo_alerts_between_runs_surface(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run_a = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_a, "app")
            # the serve watchdog fired between the two analysis runs
            ledger.record_alert(
                "queue_wait", "firing", value=90.0, threshold=60.0
            )
            ledger.record_alert(
                "queue_wait", "resolved", value=5.0, threshold=60.0
            )
            run_b = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_app(run_b, "app")
            diff = diff_runs(ledger, run_a, run_b)
        assert [a["state"] for a in diff.alerts] == ["firing", "resolved"]
        assert diff.alerts[0]["objective"] == "queue_wait"
        assert diff.to_dict()["alerts"] == diff.alerts
        text = render_diff(diff)
        assert "SLO alerts between the runs: 1 fired, 1 resolved" in text
        assert "queue_wait" in text
        # alert history never gates: the run comparison itself is clean
        assert diff.clean
