"""Run-history ledger: append, resolve, fingerprints, malformed dbs."""

from __future__ import annotations

import pytest

from repro.core.report import race_fingerprint
from repro.obs.history import (
    AGGREGATE_APP,
    KIND_ANALYZE,
    KIND_BENCH,
    LedgerError,
    RunLedger,
    history_path_from_env,
    new_run_id,
    options_digest,
    race_row,
)


class TestFingerprint:
    def test_stable_across_identical_analyses(self, opensudoku_apk):
        from repro.core import Sierra, SierraOptions

        first = Sierra(SierraOptions()).analyze(opensudoku_apk).report.reports
        second = Sierra(SierraOptions()).analyze(opensudoku_apk).report.reports
        assert [r.fingerprint for r in first] == [r.fingerprint for r in second]

    def test_rank_independent(self, opensudoku_result):
        # the fingerprint hashes the race's identity, not its position in
        # the ranked list: two races on the same field still differ (the
        # access sites differ) while rank is not an input at all
        reports = opensudoku_result.report.reports
        fingerprints = [r.fingerprint for r in reports]
        assert len(set(fingerprints)) == len(fingerprints)
        assert all(len(f) == 16 for f in fingerprints)

    def test_report_dict_carries_fingerprint(self, opensudoku_result):
        for entry in opensudoku_result.report.to_dict()["reports"]:
            assert entry["fingerprint"]

    def test_fingerprint_without_provenance(self, opensudoku_result):
        import copy

        race = copy.copy(opensudoku_result.report.reports[0])
        with_prov = race_fingerprint(race)
        race.provenance = None
        without = race_fingerprint(race)
        assert with_prov != without  # HB chain is part of the identity


class TestLedgerWrites:
    def test_round_trip_analysis(self, tmp_path, opensudoku_result):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run_id = ledger.begin_run(KIND_ANALYZE, {"k": 2}, meta={"app": "opensudoku"})
            ledger.record_analysis(run_id, "opensudoku", opensudoku_result)
        with RunLedger(db) as ledger:
            runs = ledger.runs()
            assert [r["run_id"] for r in runs] == [run_id]
            assert runs[0]["kind"] == KIND_ANALYZE
            assert runs[0]["options_digest"] == options_digest({"k": 2})
            apps = ledger.app_runs(run_id)
            assert set(apps) == {"opensudoku"}
            assert set(apps["opensudoku"]["stages"]) >= {"cg_pa", "hbg", "refutation"}
            assert apps["opensudoku"]["metrics"]  # registry scrape went in
            races = ledger.races(run_id, with_reports=True)
            assert len(races) == len(opensudoku_result.report.reports)
            assert races[0]["report"]["provenance"]  # drill-down payload

    def test_race_row_shape(self, opensudoku_result):
        row = race_row(opensudoku_result.report.reports[0])
        assert set(row) == {
            "fingerprint", "rank", "field", "kind", "tier",
            "priority", "verdict", "report",
        }
        assert row["verdict"] in ("survived", "survived-budget-exceeded", "unrefuted")

    def test_aggregate_row_constant(self):
        assert AGGREGATE_APP == "*"

    def test_run_ids_unique(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32

    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        assert history_path_from_env(None) is None
        monkeypatch.setenv("REPRO_HISTORY", "/tmp/env.db")
        assert history_path_from_env(None) == "/tmp/env.db"
        assert history_path_from_env("/explicit.db") == "/explicit.db"


class TestResolve:
    @staticmethod
    def _three_runs(db):
        ids = []
        with RunLedger(db) as ledger:
            for i in range(3):
                ids.append(ledger.begin_run(KIND_BENCH, {"i": i}))
        return ids

    def test_latest_and_back_references(self, tmp_path):
        db = str(tmp_path / "h.db")
        ids = self._three_runs(db)
        with RunLedger(db) as ledger:
            assert ledger.resolve("latest")["run_id"] == ids[-1]
            assert ledger.resolve("latest~1")["run_id"] == ids[-2]
            assert ledger.resolve("latest~2")["run_id"] == ids[0]
            assert ledger.resolve(ids[1])["run_id"] == ids[1]

    def test_past_end_and_unknown_raise(self, tmp_path):
        db = str(tmp_path / "h.db")
        self._three_runs(db)
        with RunLedger(db) as ledger:
            with pytest.raises(LedgerError):
                ledger.resolve("latest~3")
            with pytest.raises(LedgerError):
                ledger.resolve("no-such-run")

    def test_prefix_resolution_and_ambiguity(self, tmp_path):
        db = str(tmp_path / "h.db")
        ids = self._three_runs(db)
        with RunLedger(db) as ledger:
            assert ledger.resolve(ids[0][:-1])["run_id"] == ids[0]
            with pytest.raises(LedgerError):
                ledger.resolve("r")  # matches every run

    def test_empty_ledger_raises(self, tmp_path):
        with RunLedger(str(tmp_path / "h.db")) as ledger:
            with pytest.raises(LedgerError):
                ledger.resolve("latest")


class TestMalformedLedger:
    def test_not_a_database(self, tmp_path):
        db = tmp_path / "h.db"
        db.write_bytes(b"\x00" * 512)  # header-sized garbage
        with pytest.raises(LedgerError):
            RunLedger(str(db))

    def test_wrong_tables(self, tmp_path):
        import sqlite3

        db = str(tmp_path / "h.db")
        conn = sqlite3.connect(db)
        conn.execute("CREATE TABLE runs (wrong TEXT)")  # name clash, bad shape
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError):
            with RunLedger(db) as ledger:
                ledger.begin_run(KIND_ANALYZE, {})
