"""The self-contained HTML dashboard: one file, zero external fetches,
and the injected race from the differential scenario is visible in it."""

from __future__ import annotations

import dataclasses
import re

import pytest

from repro.core import SierraOptions
from repro.obs.dashboard import ledger_payload, render_dashboard
from repro.obs.history import KIND_ANALYZE, RunLedger

from tests.obs.test_diffing import BASE_SPEC, _record


@pytest.fixture(scope="module")
def dashboard_html(tmp_path_factory):
    """Two recorded runs (second with one injected race) rendered to HTML."""
    db = str(tmp_path_factory.mktemp("dash") / "h.db")
    _record(db, BASE_SPEC)
    _record(db, {**BASE_SPEC, "evrace": 2})
    with RunLedger(db) as ledger:
        return render_dashboard(ledger)


class TestSelfContained:
    def test_single_html_document(self, dashboard_html):
        assert dashboard_html.count("<!DOCTYPE html>") == 1
        assert dashboard_html.count("<html") == 1
        assert dashboard_html.rstrip().endswith("</html>")

    def test_no_external_resource_references(self, dashboard_html):
        # no fetchable URLs, no external scripts/stylesheets/images/fonts:
        # the file must render with the network cable unplugged. The SVG
        # namespace identifier createElementNS requires is not a fetch —
        # it is the one URL-shaped string allowed
        stripped = dashboard_html.replace("http://www.w3.org/2000/svg", "")
        assert "http://" not in stripped
        assert "https://" not in stripped
        assert "<link" not in dashboard_html
        assert "<img" not in dashboard_html
        assert "<iframe" not in dashboard_html
        assert "@import" not in dashboard_html
        for tag in re.findall(r"<script[^>]*>", dashboard_html):
            assert "src=" not in tag  # scripts are inline only
        for url in re.findall(r"url\(", dashboard_html):
            pytest.fail("css url() reference found")

    def test_embedded_json_cannot_break_out_of_its_tag(self, dashboard_html):
        start = dashboard_html.index('<script type="application/json"')
        end = dashboard_html.index("</script>", start)
        blob = dashboard_html[start:end]
        assert "</" not in blob.split(">", 1)[1]  # every </ is escaped <\/

    def test_names_the_injected_race(self, dashboard_html):
        # the seeded extra event race surfaces in the embedded data (race
        # table + drill-down render from exactly this blob)
        assert "evrace_" in dashboard_html
        assert "fork_evidence" in dashboard_html  # provenance rode along

    def test_title_is_escaped(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            html = render_dashboard(ledger, title="<script>alert(1)</script>")
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestPayload:
    def test_payload_shape(self, tmp_path, opensudoku_result):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run_id = ledger.begin_run(
                KIND_ANALYZE, dataclasses.asdict(SierraOptions())
            )
            ledger.record_analysis(run_id, "opensudoku", opensudoku_result)
            payload = ledger_payload(ledger)
        assert payload["aggregate_app"] == "*"
        (run,) = payload["runs"]
        assert run["run_id"] == run_id
        assert set(run["apps"]) == {"opensudoku"}
        assert len(run["races"]) == len(opensudoku_result.report.reports)
        assert run["races"][0]["report"]["provenance"]

    def test_write_dashboard_cli(self, tmp_path, opensudoku_result):
        from repro.cli import main

        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            run_id = ledger.begin_run(KIND_ANALYZE, {})
            ledger.record_analysis(run_id, "opensudoku", opensudoku_result)
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--history", db, "-o", str(out)]) == 0
        html = out.read_text()
        assert "mAccumTime" in html  # the app's top race is in the data
        assert html.count("<html") == 1

    def test_dashboard_empty_ledger_renders(self, tmp_path):
        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            html = render_dashboard(ledger)
        assert '"runs": []' in html

    def test_dashboard_malformed_ledger_exits_two(self, tmp_path):
        from repro.cli import main

        db = tmp_path / "h.db"
        db.write_bytes(b"\x00" * 512)
        assert main(["dashboard", "--history", str(db),
                     "-o", str(tmp_path / "d.html")]) == 2


class TestServeAware:
    def test_ledger_jobs_is_none_for_pure_analysis_ledger(self, tmp_path):
        from repro.obs.dashboard import ledger_jobs

        db = str(tmp_path / "h.db")
        with RunLedger(db) as ledger:
            # never creates a jobs table in someone else's ledger
            assert ledger_jobs(ledger) is None

    def test_ledger_jobs_reads_a_serve_ledger(self, tmp_path):
        from repro.obs.dashboard import ledger_jobs
        from repro.serve import JobStore

        db = str(tmp_path / "h.db")
        with JobStore(db) as store:
            store.submit("quickstart")
        with RunLedger(db) as ledger:
            (job,) = ledger_jobs(ledger)
        assert job["app"] == "quickstart"
        assert job["status"] == "queued"

    def test_cli_dashboard_embeds_jobs_and_alerts(self, tmp_path):
        from repro.cli import main
        from repro.serve import JobStore

        db = str(tmp_path / "h.db")
        with JobStore(db) as store:
            store.submit("newsreader")
        with RunLedger(db) as ledger:
            ledger.record_alert("queue_wait", "firing", value=90.0, threshold=60.0)
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--history", db, "-o", str(out)]) == 0
        html = out.read_text()
        assert '"jobs":' in html and "newsreader" in html
        assert '"alerts":' in html and "queue_wait" in html
        assert "jobs-section" in html and "alerts-section" in html
