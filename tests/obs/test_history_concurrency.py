"""Concurrent writers against one ledger file.

These tests pin the concurrency contract of
:func:`repro.obs.history.connect_ledger` — WAL journal, busy timeout,
cross-thread connections, explicit write transactions. Each fails
against the pre-hardening ledger (default-journal, ``check_same_thread``
connections, autocommit writes): shared-connection threads raised
``sqlite3.ProgrammingError`` and multi-process writers lost inserts to
``database is locked``.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.obs.history import KIND_ANALYZE, RunLedger, connect_ledger


def test_ledger_connection_is_wal_with_busy_timeout(tmp_path):
    path = str(tmp_path / "ledger.sqlite")
    with RunLedger(path) as ledger:
        db = ledger._db
        assert db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert int(db.execute("PRAGMA busy_timeout").fetchone()[0]) >= 4000


def test_one_ledger_shared_across_threads(tmp_path):
    """Pre-fix: sqlite3.ProgrammingError (connection bound to its creating
    thread). Post-fix: the internal lock serializes all 40 writes."""
    path = str(tmp_path / "ledger.sqlite")
    errors = []
    with RunLedger(path) as ledger:
        def writer(i):
            try:
                for j in range(10):
                    run_id = ledger.begin_run(
                        KIND_ANALYZE, {"k": i}, meta={"writer": i, "j": j}
                    )
                    ledger.record_app(run_id, f"app-{i}", status="ok")
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        assert len(ledger.runs()) == 40


def _hammer(path, writer_id, runs_per_writer, out_queue):
    try:
        with RunLedger(path) as ledger:
            for j in range(runs_per_writer):
                run_id = ledger.begin_run(
                    KIND_ANALYZE,
                    {"writer": writer_id},
                    meta={"j": j},
                )
                ledger.record_app(
                    run_id, f"app-{writer_id}-{j}", status="ok", elapsed_s=0.0
                )
        out_queue.put(("ok", writer_id))
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        out_queue.put(("error", f"{writer_id}: {type(exc).__name__}: {exc}"))


def test_multiprocess_concurrent_writers_lose_nothing(tmp_path):
    """The stress test: 4 processes x 12 runs against one ledger file.

    Without WAL + busy timeout + BEGIN IMMEDIATE, contending writers die
    with ``database is locked`` and runs go missing; with them, every
    run and app row lands.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        pytest.skip("fork start method unavailable")
    path = str(tmp_path / "ledger.sqlite")
    RunLedger(path).close()  # create the schema once, like a daemon would
    writers, runs_per_writer = 4, 12
    out_queue = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer, args=(path, i, runs_per_writer, out_queue))
        for i in range(writers)
    ]
    for p in procs:
        p.start()
    results = [out_queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(30)
    failures = [detail for kind, detail in results if kind != "ok"]
    assert not failures, failures
    with RunLedger(path) as ledger:
        runs = ledger.runs()
        assert len(runs) == writers * runs_per_writer
        apps = {
            app
            for run in runs
            for app in ledger.app_runs(str(run["run_id"]))
        }
        assert len(apps) == writers * runs_per_writer


def test_writes_are_transactional_on_failure(tmp_path):
    """A failing write rolls back instead of leaving half a run behind."""
    path = str(tmp_path / "ledger.sqlite")
    with RunLedger(path) as ledger:
        run_id = ledger.begin_run(KIND_ANALYZE, {}, meta={})
        ledger.record_app(run_id, "app", status="ok")
        with pytest.raises(Exception):
            # PRIMARY KEY (run_id, app) violation mid-transaction
            ledger.record_app(run_id, "app", status="ok")
        assert len(ledger.runs()) == 1
        assert list(ledger.app_runs(run_id)) == ["app"]


def test_connect_ledger_rejects_non_database(tmp_path):
    import sqlite3

    path = tmp_path / "not-a-db"
    path.write_text("just text\n")
    with pytest.raises(sqlite3.DatabaseError):
        db = connect_ledger(str(path))
        db.execute("SELECT 1 FROM sqlite_master")
