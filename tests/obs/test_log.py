"""Tests for :mod:`repro.obs.log`: JSON event lines, correlation-field
binding, env-driven configuration, and the obs-bus bridge."""

from __future__ import annotations

import io
import json
import logging
import os

import pytest

from repro import obs
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _clean_logging():
    yield
    obs_log.unconfigure()


def _configure_json(level="debug"):
    stream = io.StringIO()
    handler = obs_log.configure(level=level, json_mode=True, stream=stream)
    assert handler is not None
    return stream


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


# ----------------------------------------------------------------------
# formatting + correlation
# ----------------------------------------------------------------------
def test_json_lines_carry_event_fields_and_pid():
    stream = _configure_json()
    log = obs_log.get_logger("test.unit")
    obs_log.event(log, "thing.happened", count=3, status="ok", skipme=None)
    (line,) = _lines(stream)
    assert line["event"] == "thing.happened"
    assert line["level"] == "INFO"
    assert line["logger"] == "repro.test.unit"
    assert line["count"] == 3
    assert line["status"] == "ok"
    assert line["pid"] == os.getpid()
    assert "skipme" not in line  # None fields are dropped
    assert line["ts"].endswith("+00:00")


def test_bind_nests_and_restores():
    stream = _configure_json()
    log = obs_log.get_logger("test.bind")
    with obs_log.bind(job_id="j1", app="quickstart"):
        obs_log.event(log, "outer")
        with obs_log.bind(app="newsreader", worker="w0"):
            obs_log.event(log, "inner")
        obs_log.event(log, "outer.again")
    obs_log.event(log, "unbound")
    outer, inner, again, unbound = _lines(stream)
    assert (outer["job_id"], outer["app"]) == ("j1", "quickstart")
    assert (inner["job_id"], inner["app"], inner["worker"]) == (
        "j1", "newsreader", "w0",
    )
    assert again["app"] == "quickstart" and "worker" not in again
    assert "job_id" not in unbound and "app" not in unbound


def test_span_id_stamped_inside_open_span():
    stream = _configure_json()
    log = obs_log.get_logger("test.span")
    with obs.span("refute-one"):
        obs_log.event(log, "inside")
    obs_log.event(log, "outside")
    inside, outside = _lines(stream)
    assert inside["span_id"]
    assert "span_id" not in outside


def test_level_filtering():
    stream = _configure_json(level="warning")
    log = obs_log.get_logger("test.levels")
    obs_log.event(log, "quiet", level=logging.INFO)
    obs_log.event(log, "loud", level=logging.WARNING)
    (line,) = _lines(stream)
    assert line["event"] == "loud"


def test_text_mode_renders_fields():
    stream = io.StringIO()
    obs_log.configure(level="info", json_mode=False, stream=stream)
    log = obs_log.get_logger("test.text")
    with obs_log.bind(job_id="j9"):
        obs_log.event(log, "did.thing", n=2)
    out = stream.getvalue()
    assert "did.thing" in out and "job_id=j9" in out and "n=2" in out


def test_exception_lands_in_the_record():
    stream = _configure_json()
    log = obs_log.get_logger("test.exc")
    try:
        raise ValueError("boom")
    except ValueError:
        log.exception("it broke")
    (line,) = _lines(stream)
    assert line["event"] == "it broke"
    assert "ValueError: boom" in line["exc"]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_unconfigured_is_silent_no_op():
    assert obs_log.configure() is None  # nothing asked for logging
    assert not obs_log.is_configured()


def test_env_configures(monkeypatch):
    monkeypatch.setenv(obs_log.LOG_LEVEL_ENV, "debug")
    stream = io.StringIO()
    handler = obs_log.configure(stream=stream)
    assert handler is not None
    obs_log.event(obs_log.get_logger("test.env"), "hi", level=logging.DEBUG)
    assert "hi" in stream.getvalue()


def test_env_json_alone_implies_info(monkeypatch):
    monkeypatch.setenv(obs_log.LOG_JSON_ENV, "1")
    stream = io.StringIO()
    assert obs_log.configure(stream=stream) is not None
    obs_log.event(obs_log.get_logger("test.envjson"), "structured")
    (line,) = _lines(stream)
    assert line["event"] == "structured"


def test_explicit_off_beats_env(monkeypatch):
    monkeypatch.setenv(obs_log.LOG_LEVEL_ENV, "debug")
    assert obs_log.configure(level="off") is None


def test_bad_level_raises():
    with pytest.raises(ValueError, match="unknown log level"):
        obs_log.configure(level="chatty")


def test_reconfigure_replaces_handler():
    first = io.StringIO()
    second = io.StringIO()
    obs_log.configure(level="info", json_mode=True, stream=first)
    obs_log.configure(level="info", json_mode=True, stream=second)
    obs_log.event(obs_log.get_logger("test.re"), "once")
    assert first.getvalue() == ""
    assert len(_lines(second)) == 1


# ----------------------------------------------------------------------
# the obs-bus bridge
# ----------------------------------------------------------------------
def test_bridge_mirrors_stage_and_warning_events():
    stream = _configure_json(level="debug")
    with obs.stage("hbg"):
        pass
    obs.emit_warning("pool fell back to serial", stage="refutation")
    events = {line["event"]: line for line in _lines(stream)}
    assert events["stage.end"]["stage"] == "hbg"
    assert events["stage.end"]["level"] == "DEBUG"
    assert events["stage.warning"]["stage"] == "refutation"
    assert events["stage.warning"]["level"] == "WARNING"
    assert "serial" in events["stage.warning"]["message"]


def test_bridge_skips_spans_and_detaches_on_unconfigure():
    stream = _configure_json(level="debug")
    with obs.span("tiny"):
        pass
    assert all(l["event"] != "span.end" for l in _lines(stream))

    obs_log.unconfigure()
    before = stream.getvalue()
    with obs.stage("after-teardown"):
        pass
    assert stream.getvalue() == before
