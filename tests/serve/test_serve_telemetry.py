"""End-to-end telemetry tests of the serve daemon: Prometheus text over
HTTP (parser-validated), the ring-buffer time-series at /v1/telemetry,
worker heartbeats in /healthz, the SLO watchdog flipping health to
degraded under an injected stall, and a job lifecycle reconstructed from
the JSON log stream by job_id alone."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.core import SierraOptions
from repro.obs import log as obs_log
from repro.serve import DONE, FAILED, ServeClient, ServeDaemon

from tests.obs.test_telemetry import _check_histogram, parse_exposition


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-telemetry")
    cache = root / "cache"
    cache.mkdir()
    with ServeDaemon(
        str(root / "runs.sqlite"),
        options=SierraOptions(cache_dir=str(cache)),
        workers=2,
        port=0,
        sample_interval_s=0.05,
        slo_interval_s=0.05,
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(daemon):
    return ServeClient(daemon.url)


def _wait_until(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    return predicate()


# ----------------------------------------------------------------------
# /metrics content negotiation
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_metrics_text_negotiation_is_valid_exposition(client):
    client.wait(str(client.submit("quickstart")["job_id"]), timeout_s=90)

    text = client.metrics_text()
    families = parse_exposition(text)  # strict line-level validation
    assert families["serve_requests_total"]["type"] == "counter"
    assert families["serve_jobs_completed"]["samples"][0][2] >= 1
    assert families["serve_queue_depth"]["type"] == "gauge"
    _check_histogram(families["serve_job_seconds"], "serve_job_seconds")
    _check_histogram(
        families["serve_request_seconds_healthz"], "serve_request_seconds_healthz"
    )

    # ?format=prometheus negotiates the same body without the header
    assert parse_exposition(client._get_text("/metrics?format=prometheus"))

    # the JSON scrape still answers by default, labeled with identity
    scraped = client.metrics()
    assert "serve.requests_total" in scraped
    assert isinstance(scraped["pid"], int)
    assert scraped["uptime_seconds"] > 0
    assert "scrape_monotonic" in scraped


# ----------------------------------------------------------------------
# /v1/telemetry
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_telemetry_endpoint_streams_live_samples(client):
    def three_samples():
        payload = client.telemetry()
        return payload if len(payload["samples"]) >= 3 else None

    payload = _wait_until(three_samples)
    assert payload["interval_s"] == 0.05
    assert payload["slo"]["status"] in ("ok", "degraded")
    assert {o["name"] for o in payload["objectives"]} == {
        "p99_job_latency", "queue_wait", "failure_ratio", "worker_stall",
    }
    samples = payload["samples"]
    assert samples == sorted(samples, key=lambda s: s["monotonic"])
    latest = samples[-1]
    for key in ("queue_depth", "jobs_running", "workers_busy", "workers_idle",
                "uptime_seconds", "ts_utc"):
        assert key in latest
    # percentile gaps are None, never a fake 0.0 (empty-histogram NaN)
    assert all(s["request_p99_s"] is None or s["request_p99_s"] > 0
               for s in samples)

    limited = client.telemetry(limit=2)
    assert len(limited["samples"]) <= 2


# ----------------------------------------------------------------------
# /healthz worker heartbeats
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_healthz_reports_per_worker_heartbeats(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2  # back-compat count
    workers = health["worker_status"]
    assert [w["worker"] for w in workers] == ["worker-0", "worker-1"]
    for worker in workers:
        assert worker["heartbeat_age_s"] >= 0
        assert "busy" in worker and "job_id" in worker
        assert worker["jobs_finished"] >= 0
    assert "queue_wait_s" in health
    assert health["uptime_seconds"] > 0
    assert isinstance(health["pid"], int)


# ----------------------------------------------------------------------
# the SLO watchdog under an injected stall
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_injected_stall_degrades_healthz_and_records_alerts(tmp_path):
    # a dedicated daemon: tiny job budget so the hang resolves fast, and
    # a worker_stall SLO tight enough to fire inside it
    with ServeDaemon(
        str(tmp_path / "stall.sqlite"),
        workers=1,
        port=0,
        job_timeout_s=2.0,
        sample_interval_s=0.05,
        slo_interval_s=0.05,
        slo={
            "worker_stall": 0.3,
            "worker_stall.window_s": 0.6,
            "worker_stall.min_samples": 2,
            # the failed hang job lands ~2.3s in the cumulative job
            # histogram; keep the latency SLO out of this test's way or
            # health would stay degraded long after the stall resolves
            "p99_job_latency": 600.0,
        },
    ) as daemon:
        client = ServeClient(daemon.url)
        job = client.submit("quickstart", {"inject_hang": True})

        degraded = _wait_until(
            lambda: (h := client.health())["status"] == "degraded" and h
        )
        assert degraded, "healthz never flipped degraded under the stall"
        (violation,) = [
            v for v in degraded["violations"] if v["objective"] == "worker_stall"
        ]
        assert violation["metric"] == "max_heartbeat_age_s"
        assert violation["value"] > violation["threshold"] == 0.3
        assert violation["since_utc"]
        # the stalled worker is visible by name, frozen on its job
        (worker,) = degraded["worker_status"]
        assert worker["busy"] and worker["job_id"] == job["job_id"]
        assert worker["heartbeat_age_s"] > 0.3

        # the hang is killed at the 2s job budget and the job fails...
        final = client.wait(str(job["job_id"]), timeout_s=30)
        assert final["status"] == FAILED

        # ...after which the objective resolves and health recovers
        recovered = _wait_until(lambda: client.health()["status"] == "ok")
        assert recovered, "healthz never recovered after the stall ended"

        # the transitions are durable ledger rows, diffable later
        alerts = _wait_until(
            lambda: (a := daemon.ledger.alerts())
            and [r["state"] for r in a] == ["firing", "resolved"]
            and a
        )
        assert alerts, f"expected firing+resolved rows, got {daemon.ledger.alerts()}"
        assert all(r["objective"] == "worker_stall" for r in alerts)
        assert alerts[0]["value"] > alerts[0]["threshold"] == 0.3
        assert alerts[0]["detail"]["metric"] == "max_heartbeat_age_s"


# ----------------------------------------------------------------------
# the JSON log stream: one job's lifecycle by job_id alone
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_job_lifecycle_reconstructable_from_log_stream(daemon, client):
    stream = io.StringIO()
    obs_log.configure(level="info", json_mode=True, stream=stream)
    try:
        job = client.submit("newsreader")
        final = client.wait(str(job["job_id"]), timeout_s=90)
        assert final["status"] == DONE
        # the worker thread logs job.done after store.finish; give the
        # line a beat to land in the stream
        _wait_until(lambda: "job.done" in stream.getvalue(), timeout_s=10)
    finally:
        obs_log.unconfigure()

    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    mine = [r for r in records if r.get("job_id") == job["job_id"]]
    lifecycle = [r["event"] for r in mine]
    assert lifecycle.index("job.submitted") < lifecycle.index("job.claimed")
    assert lifecycle.index("job.claimed") < lifecycle.index("job.done")
    by_event = {r["event"]: r for r in mine}
    assert by_event["job.submitted"]["app"] == "newsreader"
    assert by_event["job.claimed"]["worker"].startswith("worker-")
    assert by_event["job.done"]["run_id"]
    assert by_event["job.done"]["elapsed_s"] > 0
    # every line in the stream is JSON with pid + ts (machine-parseable)
    assert all("pid" in r and "ts" in r for r in records)


@pytest.mark.serve_smoke
def test_failed_job_logs_warning_with_error(daemon, client):
    stream = io.StringIO()
    obs_log.configure(level="info", json_mode=True, stream=stream)
    try:
        job = client.submit("quickstart", {"inject_fail": True})
        final = client.wait(str(job["job_id"]), timeout_s=60)
        assert final["status"] == FAILED
        _wait_until(lambda: "job.failed" in stream.getvalue(), timeout_s=10)
    finally:
        obs_log.unconfigure()
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    (failed,) = [
        r for r in records
        if r.get("event") == "job.failed" and r.get("job_id") == job["job_id"]
    ]
    assert failed["level"] == "WARNING"
    assert failed["error_type"]


# ----------------------------------------------------------------------
# the serve-aware dashboard
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_serve_dashboard_embeds_jobs_and_telemetry(daemon, client):
    client.wait(str(client.submit("quickstart")["job_id"]), timeout_s=90)
    html = client.dashboard()

    # still one self-contained document with zero external fetches
    assert html.count("<!DOCTYPE html>") == 1
    stripped = html.replace("http://www.w3.org/2000/svg", "")
    assert "http://" not in stripped and "https://" not in stripped
    assert "<link" not in html and "<img" not in html
    assert 'src="' not in html

    start = html.index('<script type="application/json"')
    end = html.index("</script>", start)
    blob = html[start:end].split(">", 1)[1]
    assert "</" not in blob  # every </ is escaped <\/
    data = json.loads(blob.replace("<\\/", "</"))
    assert any(j["app"] == "quickstart" and j["status"] == DONE
               for j in data["jobs"])
    telemetry = data["telemetry"]
    assert telemetry["samples"], "live samples must ride in the dashboard"
    assert telemetry["slo"]["status"] in ("ok", "degraded")
    assert "queue_depth" in telemetry["samples"][-1]
    # the panels that render them are present
    for anchor in ("slo-section", "telemetry-section", "jobs-section",
                   "queue-chart", "latency-chart", "worker-table"):
        assert anchor in html, f"missing dashboard anchor {anchor}"
