"""End-to-end and unit tests of the ``repro serve`` daemon.

One module-scoped daemon (ephemeral port, forked workers, shared
substrate cache) carries the e2e tests; the job-store unit tests open
their own ledger files.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.core import SierraOptions
from repro.obs.history import KIND_ANALYZE, RunLedger
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobStore,
    ServeClient,
    ServeDaemon,
    ServeError,
    merge_job_options,
    percentile,
)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    cache = root / "cache"
    cache.mkdir()
    options = SierraOptions(cache_dir=str(cache))
    with ServeDaemon(
        str(root / "runs.sqlite"), options=options, workers=2, port=0
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(daemon):
    return ServeClient(daemon.url)


# ----------------------------------------------------------------------
# e2e: submit -> poll -> fetch
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_submit_poll_fetch_roundtrip(client):
    job = client.submit("quickstart")
    assert job["status"] == QUEUED
    assert job["poll"] == f"/v1/jobs/{job['job_id']}"

    final = client.wait(str(job["job_id"]), timeout_s=90)
    assert final["status"] == DONE
    assert final["run_id"]
    assert final["elapsed_s"] > 0

    report = client.report(str(final["run_id"]))
    assert report["kind"] == "serve"
    assert report["meta"]["job_id"] == job["job_id"]
    assert set(report["apps"]) == {"quickstart"}
    # quickstart is the paper's Fig. 1 app: its one true race must survive
    assert any(r["field"] for r in report["races"])


@pytest.mark.serve_smoke
def test_health_and_metrics(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert set(health["jobs"]) == {QUEUED, RUNNING, DONE, FAILED}
    scraped = client.metrics()
    assert "serve.requests_total" in scraped
    assert "serve.request_seconds" in scraped


def test_dashboard_served(client):
    html = client.dashboard()
    assert html.lstrip().startswith("<!DOCTYPE html>" ) or "<html" in html


def test_submit_unknown_app_is_400(client):
    with pytest.raises(ServeError) as err:
        client.submit("nonesuch")
    assert err.value.status == 400


def test_submit_unknown_option_is_400(client):
    with pytest.raises(ServeError) as err:
        client.submit("quickstart", {"frobnicate": 1})
    assert err.value.status == 400
    assert "frobnicate" in str(err.value)


def test_unknown_job_is_404(client):
    with pytest.raises(ServeError) as err:
        client.job("jNOPE")
    assert err.value.status == 404


def test_unknown_route_is_404(client):
    with pytest.raises(ServeError) as err:
        client._request("GET", "/v2/everything")
    assert err.value.status == 404


# ----------------------------------------------------------------------
# concurrency: N submissions -> N distinct ledger runs
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_concurrent_submissions_distinct_runs(daemon, client):
    n = 6
    finals = [None] * n
    errors = []

    def one(i):
        try:
            job = client.submit("quickstart")
            finals[i] = client.wait(str(job["job_id"]), timeout_s=120)
        except Exception as exc:  # noqa: BLE001 — collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(180)
    assert not errors
    assert all(f is not None and f["status"] == DONE for f in finals)
    run_ids = {f["run_id"] for f in finals}
    assert len(run_ids) == n  # one ledger run per job, never shared
    report = client.report(sorted(run_ids)[0])
    assert set(report["apps"]) == {"quickstart"}


# ----------------------------------------------------------------------
# fault isolation: a crashing worker fails the job, never hangs the client
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_worker_crash_fails_job_not_client(client):
    job = client.submit("quickstart", {"inject_fail": True})
    final = client.wait(str(job["job_id"]), timeout_s=90)
    assert final["status"] == FAILED
    assert final["error"]["type"] == "RuntimeError"
    assert "injected failure" in final["error"]["message"]
    # and the daemon survives: the next job runs fine
    ok = client.wait(str(client.submit("quickstart")["job_id"]), timeout_s=90)
    assert ok["status"] == DONE


def test_wait_timeout_raises_not_hangs(client):
    job = client.submit("quickstart", {"inject_hang": True})
    with pytest.raises(ServeError, match="still"):
        client.wait(str(job["job_id"]), timeout_s=0.5)


# ----------------------------------------------------------------------
# warm starts through the shared substrate cache
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_second_submission_warm_starts(client):
    first = client.wait(str(client.submit("newsreader")["job_id"]), timeout_s=120)
    second = client.wait(str(client.submit("newsreader")["job_id"]), timeout_s=120)
    assert first["status"] == DONE and second["status"] == DONE

    def worklist(final):
        metrics = client.report(str(final["run_id"]))["apps"]["newsreader"][
            "metrics"
        ]
        entry = metrics.get("pointsto.worklist_iterations")
        return int(entry["value"]) if entry else 0

    assert worklist(first) > 0  # the cold run actually solved points-to
    assert worklist(second) == 0  # the warm run replayed the cached substrate


# ----------------------------------------------------------------------
# serve ≡ CLI: the same app one-shot and via the daemon diffs clean
# ----------------------------------------------------------------------
@pytest.mark.serve_smoke
def test_serve_results_equal_cli_oneshot(daemon, client, quickstart_apk):
    from repro.core import Sierra
    from repro.obs.diffing import diff_runs

    options = dataclasses.asdict(
        SierraOptions(cache_dir=daemon.pool.options.cache_dir)
    )
    result = Sierra(daemon.pool.options).analyze(quickstart_apk)
    with RunLedger(daemon.history) as ledger:
        oneshot = ledger.begin_run(
            KIND_ANALYZE, options, meta={"app": "quickstart"}
        )
        ledger.record_analysis(oneshot, "quickstart", result, elapsed_s=0.1)
    final = client.wait(str(client.submit("quickstart")["job_id"]), timeout_s=120)

    diff = client.diff(oneshot, str(final["run_id"]))
    assert diff["new_races"] == []
    assert diff["fixed_races"] == []
    assert diff["verdict_flips"] == []


def test_daemon_recovers_orphaned_jobs(tmp_path):
    history = tmp_path / "runs.sqlite"
    with JobStore(str(history)) as store:
        job = store.submit("quickstart")
        assert store.claim("w0").job_id == job.job_id  # left RUNNING: a "crash"
    with ServeDaemon(str(history), workers=1, port=0) as daemon:
        assert daemon.recovered_jobs == 1
        final = ServeClient(daemon.url).wait(job.job_id, timeout_s=120)
        assert final["status"] == DONE


# ----------------------------------------------------------------------
# job store unit tests
# ----------------------------------------------------------------------
def test_job_store_lifecycle(tmp_path):
    with JobStore(str(tmp_path / "jobs.sqlite")) as store:
        job = store.submit("quickstart", {"k": 3})
        assert job.status == QUEUED and not job.terminal
        assert store.counts()[QUEUED] == 1

        claimed = store.claim("w0")
        assert claimed.job_id == job.job_id
        assert claimed.status == RUNNING and claimed.worker == "w0"
        assert store.claim("w1") is None  # exactly one claimer wins

        store.finish(job.job_id, DONE, run_id="r1", elapsed_s=1.5)
        final = store.get(job.job_id)
        assert final.terminal and final.run_id == "r1"
        assert final.options == {"k": 3}
        assert store.counts() == {QUEUED: 0, RUNNING: 0, DONE: 1, FAILED: 0}


def test_job_store_claim_is_fifo(tmp_path):
    with JobStore(str(tmp_path / "jobs.sqlite")) as store:
        first = store.submit("quickstart")
        store.submit("newsreader")
        assert store.claim("w").job_id == first.job_id


def test_job_store_finish_rejects_non_terminal(tmp_path):
    with JobStore(str(tmp_path / "jobs.sqlite")) as store:
        job = store.submit("quickstart")
        with pytest.raises(ValueError):
            store.finish(job.job_id, RUNNING)


def test_job_store_concurrent_claims_unique(tmp_path):
    with JobStore(str(tmp_path / "jobs.sqlite")) as store:
        for _ in range(8):
            store.submit("quickstart")
        claimed, errors = [], []

        def worker(name):
            try:
                while True:
                    job = store.claim(name)
                    if job is None:
                        return
                    claimed.append(job.job_id)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(claimed) == 8
        assert len(set(claimed)) == 8  # no job claimed twice


# ----------------------------------------------------------------------
# option merging + percentile helpers
# ----------------------------------------------------------------------
def test_merge_job_options_overlays_and_rejects():
    base = SierraOptions(cache_dir="/srv/cache")
    merged = merge_job_options(base, {"selector": "kcfa", "k": 3})
    assert merged["selector"] == "kcfa" and merged["k"] == 3
    assert merged["cache_dir"] == "/srv/cache"  # server-owned, not a job knob
    with pytest.raises(ValueError, match="cache_dir"):
        merge_job_options(base, {"cache_dir": "/etc"})
    with pytest.raises(ValueError, match="nope"):
        merge_job_options(base, {"nope": 1})
    # inject_* flags pass validation but never leak into analysis options
    merged = merge_job_options(base, {"inject_fail": True})
    assert "inject_fail" not in merged


def test_percentile_exact():
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 99) == 7.0
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 2.5
    assert percentile(values, 100) == 4.0
    assert percentile(values, 25) == 1.75
    with pytest.raises(ValueError):
        percentile(values, 101)
