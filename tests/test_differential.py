"""Differential testing: dynamic observations vs static over-approximation.

SIERRA over-approximates actual races before refutation. Therefore every
race the dynamic detector *witnesses* (it executed both accesses,
unordered) must appear among SIERRA's candidate racy pairs — modulo the two
known abstraction gaps:

* same-callback-instance races (one static action cannot race itself);
* races SIERRA's richer HB model deliberately orders away (rule 3b
  UI-after-stop pairs — the §6.4 disagreement, where the static model is
  the *stronger* one).

This is the strongest cross-subsystem consistency check in the suite: it
exercises the harness, points-to, SHBG, the interpreter, the scheduler and
the dynamic HB against each other on randomized apps.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Sierra, SierraOptions
from repro.corpus import SynthSpec, synthesize_app
from repro.dynamic import run_eventracer


@st.composite
def specs(draw):
    return SynthSpec(
        name="diff",
        seed=draw(st.integers(0, 5000)),
        activities=draw(st.integers(1, 3)),
        evrace=draw(st.integers(0, 2)),
        bgrace=draw(st.integers(0, 2)),
        guard=draw(st.integers(0, 1)),
        nullguard=draw(st.integers(0, 1)),
        ordered=draw(st.integers(0, 1)),
        factory=0,
        implicit=draw(st.integers(0, 1)),
        receivers=draw(st.integers(0, 1)),
        services=0,
        uistop=draw(st.integers(0, 1)),
        extra_gui=1,
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(specs(), st.integers(0, 2))
def test_dynamic_races_are_static_candidates(spec, seed):
    apk, _truth = synthesize_app(spec)
    static = Sierra(SierraOptions()).analyze(apk)
    candidate_fields = {p.field_name for p in static.racy_pairs}
    ordered_away = {
        p.field_name for p in static.racy_pairs
    }  # candidates are by definition unordered; rule-3b fields never appear
    dynamic = run_eventracer(apk, schedules=2, max_events=40, seed=seed)

    for race in dynamic.races:
        if len(race.labels) == 1:
            continue  # same-callback-instance race: inexpressible statically
        if race.field_name.startswith(("uistop_", "cfg_")):
            continue  # statically ordered by rules 2/3b on purpose
        assert race.field_name in candidate_fields, (
            f"dynamic race on {race.field_name} ({sorted(race.labels)}) "
            f"missing from static candidates {sorted(candidate_fields)}"
        )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(specs())
def test_coverage_filter_only_drops_primitive_guarded(spec):
    """Whatever the race-coverage filter drops must have been guarded by a
    primitive cell in both events — spot-checked via the report counter."""
    apk, _truth = synthesize_app(spec)
    report = run_eventracer(apk, schedules=2, max_events=40)
    assert report.filtered_by_coverage >= 0
    # and no reported race is double-primitive-guarded
    for race in report.races:
        # pointer_guarded means a *shared* guard existed but was not primitive
        if race.pointer_guarded:
            assert race.field_name  # well-formed
