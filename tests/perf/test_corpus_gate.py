"""The sharded-corpus bench block and its regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.perf import run_corpus_bench

_GATE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("corpus_gate_mod", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_block():
    """One real corpus bench, shared by every test in the module."""
    return run_corpus_bench(count=6, seed=3, shard_counts=[1, 2], timeout_s=60.0)


@pytest.mark.corpus_smoke
class TestCorpusBenchBlock:
    def test_block_shape(self, tiny_block):
        assert tiny_block["count"] == 6
        assert set(tiny_block["shards"]) == {"1", "2"}
        for block in tiny_block["shards"].values():
            assert block["apps_per_s"] > 0
            assert block["ok"] == 6
            assert block["error"] == block["timeout"] == 0
            assert block["latency_p99_s"] >= block["latency_p50_s"]
        assert "speedup" in tiny_block["shards"]["2"]
        assert "scaling_efficiency" in tiny_block["shards"]["2"]

    def test_sharded_equals_serial(self, tiny_block):
        assert tiny_block["equivalence"]["identical"] is True

    def test_recall_on_injected_races_is_perfect(self, tiny_block):
        truth = tiny_block["ground_truth"]
        assert truth["recall"] == 1.0
        assert truth["apps_with_misses"] == 0
        assert truth["expected"] > 0

    def test_block_is_json_serializable(self, tiny_block):
        json.dumps(tiny_block)


def _baseline_file(tmp_path, block):
    path = tmp_path / "BENCH_pipeline.json"
    path.write_text(json.dumps({"apps": {}, "corpus": block}))
    return path


class TestCorpusGate:
    def test_missing_corpus_block_is_exit_two(self, gate, tmp_path, capsys):
        path = tmp_path / "no_corpus.json"
        path.write_text(json.dumps({"apps": {}}))
        assert gate.main(["--corpus", "--baseline", str(path)]) == 2
        err = capsys.readouterr().err
        assert "no corpus block" in err and "--corpus --update" in err

    def test_healthy_rerun_passes(self, gate, tmp_path, tiny_block, capsys):
        # floor the recorded throughput: a 6-app micro-run's apps/sec is
        # not reproducible on a loaded CI box, and this test is about the
        # correctness gates (recall + equivalence), not the threshold —
        # test_throughput_collapse_is_exit_one covers that branch
        doctored = json.loads(json.dumps(tiny_block))
        for block in doctored["shards"].values():
            block["apps_per_s"] = 0.001
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--corpus", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok: recall held" in out

    def test_recall_below_baseline_is_exit_two(
        self, gate, tmp_path, tiny_block, capsys
    ):
        # a doctored recall the re-run can never reach: the healthy 1.0
        # must read as a regression against it
        doctored = json.loads(json.dumps(tiny_block))
        doctored["ground_truth"]["recall"] = 1.5
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--corpus", "--baseline", str(path)]) == 2
        assert "RECALL REGRESSION" in capsys.readouterr().err

    def test_throughput_collapse_is_exit_one(
        self, gate, tmp_path, tiny_block, capsys
    ):
        doctored = json.loads(json.dumps(tiny_block))
        for block in doctored["shards"].values():
            block["apps_per_s"] = 1e9
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--corpus", "--baseline", str(path)]) == 1
        assert "THROUGHPUT REGRESSION" in capsys.readouterr().err
