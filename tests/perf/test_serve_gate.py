"""The serve bench block and its equivalence gate (marked ``serve_smoke``)."""

from __future__ import annotations

import importlib.util
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.perf import run_serve_bench

pytestmark = pytest.mark.serve_smoke

_GATE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("run_bench_gate", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _gate_args(tmp_path, **overrides):
    defaults = dict(
        update=False,
        baseline=tmp_path / "BENCH_pipeline.json",
        cache=None,
        history=None,
    )
    defaults.update(overrides)
    return SimpleNamespace(**defaults)


def _canned_serve_block(identical: bool):
    return {
        "serve": {
            "ledger": "/tmp/ledger.sqlite",
            "workers": 2,
            "concurrency": 4,
            "isolated": True,
            "apps_per_s": 3.0,
            "latency_p50_s": 0.2,
            "latency_p99_s": 1.0,
            "apps": {
                "quickstart": {
                    "job_status": "done",
                    "latency_s": 0.2,
                    "equivalent": identical,
                }
            },
            "equivalence": {
                "identical": identical,
                "divergences": "" if identical else "quickstart: 1 new, 0 fixed, 0 flips",
            },
        }
    }


class TestRunServeBench:
    def test_block_schema_and_equivalence(self, tmp_path):
        data = run_serve_bench(
            ["quickstart", "newsreader"],
            workers=2,
            concurrency=2,
            history=str(tmp_path / "ledger.sqlite"),
            cache_dir=str(tmp_path / "cache"),
        )
        assert data["workers"] == 2
        assert data["apps_per_s"] > 0
        assert data["latency_p99_s"] >= data["latency_p50_s"] >= 0
        assert set(data["apps"]) == {"quickstart", "newsreader"}
        for record in data["apps"].values():
            assert record["job_status"] == "done"
            assert record["equivalent"] is True
            assert record["oneshot_run"] != record["serve_run"]
        assert data["equivalence"]["identical"] is True


class TestServeGate:
    def test_divergence_exits_two(self, gate, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            gate, "run_bench", lambda **kw: _canned_serve_block(False)
        )
        assert gate.serve_gate(_gate_args(tmp_path)) == 2
        assert "SERVE/CLI DIVERGENCE" in capsys.readouterr().err

    def test_identical_exits_zero(self, gate, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            gate, "run_bench", lambda **kw: _canned_serve_block(True)
        )
        assert gate.serve_gate(_gate_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "apps/s" in out and "identical to CLI one-shots" in out

    def test_cli_flag_routes_to_serve_gate(self, gate, monkeypatch, tmp_path):
        called = {}

        def fake(args):
            called["serve"] = True
            return 0

        monkeypatch.setattr(gate, "serve_gate", fake)
        assert gate.main(["--serve", "--baseline", str(tmp_path / "b.json")]) == 0
        assert called == {"serve": True}
