"""The bench gate's failure modes must be one clear line, not a traceback."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("run_bench_gate", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGateFailureMessages:
    def test_missing_baseline(self, gate, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert gate.main(["--baseline", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "no baseline" in err and "--update" in err

    def test_corrupt_baseline(self, gate, tmp_path, capsys):
        bad = tmp_path / "corrupt.json"
        bad.write_text("not json {")
        assert gate.main(["--baseline", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_baseline_with_vanished_app(self, gate, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"apps": {"paper:Gone App": {"stages": {"cg_pa": 1.0}}}}
        ))
        assert gate.main(["--baseline", str(stale)]) == 2
        err = capsys.readouterr().err
        assert "no longer in the corpus" in err
        assert "paper:Gone App" in err
        assert "Traceback" not in err

    def test_baseline_without_apps(self, gate, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"apps": {}}))
        assert gate.main(["--baseline", str(empty)]) == 2
        assert "records no apps" in capsys.readouterr().err


class TestGateRuns:
    def test_gate_benches_the_baseline_apps(self, gate, tmp_path, capsys):
        # a tiny baseline: the gate must bench exactly this app and pass
        # (generous numbers: nothing can regress 2x above them)
        baseline = tmp_path / "tiny.json"
        baseline.write_text(json.dumps(
            {"apps": {"quickstart": {"stages": {"cg_pa": 60.0, "hbg": 60.0,
                                                "refutation": 60.0,
                                                "total": 180.0}}}}
        ))
        assert gate.main(["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "paper:APV" not in out  # not the default suite: baseline-driven
