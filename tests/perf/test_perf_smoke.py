"""Fast checks of the benchmark harness (marked ``perf_smoke``).

These run the real substrate benches on a small app (speed, not the
recorded baseline) and check the regression-gate logic on synthetic
records, so ``pytest -m perf_smoke`` stays well under a minute.
"""

from __future__ import annotations

import pytest

from repro.perf import (
    bench_app,
    bench_hbg,
    bench_pointsto,
    compare_to_baseline,
    run_bench,
)

pytestmark = pytest.mark.perf_smoke

#: small enough to bench in seconds, big enough to exercise every stage
SMALL_APP = "paper:APV"


@pytest.fixture(scope="module")
def bench_record():
    return run_bench(apps=[SMALL_APP], speedup_app=None, out_path=None)


class TestBenchRecordShape:
    def test_schema_and_keys(self, bench_record):
        assert bench_record["schema"] == 1
        record = bench_record["apps"][SMALL_APP]
        assert set(record) == {"stages", "counters", "report"}
        assert set(record["stages"]) == {"cg_pa", "hbg", "refutation", "total"}

    def test_counters_are_positive(self, bench_record):
        counters = bench_record["apps"][SMALL_APP]["counters"]
        assert counters["actions"] > 0
        assert counters["closure_ops"] > 0
        assert counters["pointsto_worklist_iterations"] > 0

    def test_report_fields_recorded(self, bench_record):
        report = bench_record["apps"][SMALL_APP]["report"]
        assert report["racy_pairs"] >= report["races_after_refutation"] >= 0
        assert report["edges_by_rule"]


class TestSubstrateBenches:
    def test_bench_hbg_sides_agree(self):
        # the bench itself asserts edge-count and per-rule equality between
        # the naive and bitset builds; a crash or mismatch fails this test
        out = bench_hbg(SMALL_APP, repeats=1)
        assert out["hb_edges"] > 0
        assert out["naive_s"] > 0 and out["bitset_s"] > 0

    def test_bench_pointsto_sides_agree(self):
        out = bench_pointsto(SMALL_APP, repeats=1)
        assert out["passes"] >= 1
        assert out["worklist_iterations"] > 0

    def test_bench_app_standalone(self):
        record = bench_app(SMALL_APP)
        assert record["stages"]["total"] >= record["stages"]["cg_pa"]


class TestCorpusAnalyzeSmoke:
    """Every PR exercises the batch driver + RUN_report schema (satellite of
    the fault-isolation work; see docs/operations.md)."""

    def test_small_subset_batch_run(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "RUN_report.json"
        code = main(
            ["corpus-analyze", "--apps", "quickstart", "dbapp",
             "--out", str(out), "--timeout", "60"]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == 2
        assert data["summary"]["ok"] == data["summary"]["total"] == 2
        for record in data["apps"].values():
            assert record["status"] == "ok"
            assert set(record["stages"]) >= {"cg_pa", "hbg", "refutation"}
            assert record["counters"]["actions"] > 0


class TestTraceExport:
    """The --trace workflow end to end, plus the schema gate the bench
    driver (benchmarks/run_bench.py) runs against every emitted trace."""

    def test_analyze_trace_flag_emits_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro import obs
        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(["analyze", "quickstart", "--trace", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().err
        assert obs.validate_trace_file(str(out)) == []
        data = json.loads(out.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        # sub-stage spans, not just the three coarse stages
        assert {"cg_pa", "hbg", "refutation"} <= names
        assert any(name.startswith("hb.rule.") for name in names)
        assert any(name.startswith("pointsto.") for name in names)
        assert any(name.startswith("refute.") for name in names)

    def test_trace_memory_flag_attaches_rss(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(
            ["analyze", "quickstart", "--trace", str(out), "--trace-memory"]
        ) == 0
        data = json.loads(out.read_text())
        ends = [e for e in data["traceEvents"] if e["ph"] == "E"]
        assert any(e["args"].get("rss_peak_kb", 0) > 0 for e in ends)

    def test_bench_driver_trace_gate(self):
        import importlib.util
        from pathlib import Path

        gate_path = (
            Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
        )
        spec = importlib.util.spec_from_file_location("bench_gate", gate_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.validate_trace_gate("quickstart") == []


class TestLedgerGate:
    """``repro diff --gate`` exit-code contract over the run-history ledger:
    0 clean, 1 on an injected regression, 2 on a malformed ledger."""

    @staticmethod
    def _record_run(db, stages):
        from repro.obs.history import KIND_BENCH, RunLedger

        with RunLedger(db) as ledger:
            run_id = ledger.begin_run(KIND_BENCH, {"apps": ["app"]})
            ledger.record_app(run_id, "app", stages=stages)
        return run_id

    def test_gate_clean_exits_zero(self, tmp_path):
        from repro.cli import main

        db = str(tmp_path / "h.db")
        self._record_run(db, {"cg_pa": 1.0, "hbg": 0.5})
        self._record_run(db, {"cg_pa": 1.0, "hbg": 0.5})
        assert main(["diff", "latest~1", "latest", "--gate", "--history", db]) == 0

    def test_gate_injected_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "h.db")
        self._record_run(db, {"cg_pa": 1.0, "hbg": 0.5})
        self._record_run(db, {"cg_pa": 3.0, "hbg": 0.5})  # 3x slowdown
        assert main(["diff", "latest~1", "latest", "--gate", "--history", db]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "cg_pa" in out
        # without --gate the same diff reports but does not fail the build
        assert main(["diff", "latest~1", "latest", "--history", db]) == 0

    def test_gate_malformed_ledger_exits_two(self, tmp_path):
        from repro.cli import main

        db = tmp_path / "h.db"
        db.write_bytes(b"this is not a sqlite database, not even close")
        assert main(["diff", "latest~1", "latest", "--gate",
                     "--history", str(db)]) == 2

    def test_gate_bad_run_reference_exits_two(self, tmp_path):
        from repro.cli import main

        db = str(tmp_path / "h.db")
        self._record_run(db, {"cg_pa": 1.0})
        assert main(["diff", "latest~5", "latest", "--gate",
                     "--history", db]) == 2

    def test_bench_history_gate_rolls_forward(self, tmp_path):
        """benchmarks/run_bench.py --history: first run records and passes,
        a same-speed second run gates clean against it."""
        import importlib.util
        from pathlib import Path

        gate_path = (
            Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
        )
        spec = importlib.util.spec_from_file_location("bench_gate_h", gate_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        from repro.obs.history import KIND_BENCH, RunLedger

        db = str(tmp_path / "bench.db")
        # threshold 3.0 + a collect between runs: the first bench's live
        # objects otherwise tax the second's gen-2 sweeps (see the heap
        # note in docs/performance.md), and stages near the 50 ms noise
        # floor then flake right across a 2.0x line depending on how much
        # heap earlier tests left behind
        import gc

        assert module.gate_against_history(db, 3.0) == 0  # first run: baseline
        gc.collect()
        assert module.gate_against_history(db, 3.0) == 0  # second run: gated
        with RunLedger(db) as ledger:
            assert len(ledger.runs(kind=KIND_BENCH)) == 2

    def test_bench_history_gate_malformed_ledger(self, tmp_path):
        import importlib.util
        from pathlib import Path

        gate_path = (
            Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
        )
        spec = importlib.util.spec_from_file_location("bench_gate_h2", gate_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        db = tmp_path / "bench.db"
        db.write_bytes(b"corrupt")
        assert module.gate_against_history(str(db), 2.0) == 2


class TestRegressionGate:
    @staticmethod
    def _record(cg_pa, hbg):
        return {
            "apps": {
                "app": {"stages": {"cg_pa": cg_pa, "hbg": hbg}}
            }
        }

    def test_no_violation_within_threshold(self):
        base = self._record(1.0, 0.5)
        current = self._record(1.9, 0.9)
        assert compare_to_baseline(current, base) == []

    def test_violation_beyond_threshold(self):
        base = self._record(1.0, 0.5)
        current = self._record(2.5, 0.5)
        violations = compare_to_baseline(current, base)
        assert len(violations) == 1
        assert "app/cg_pa" in violations[0]

    def test_noise_floor_suppresses_tiny_stages(self):
        # 1ms -> 4ms is 4x but far below the floor: not a regression
        base = self._record(0.001, 0.5)
        current = self._record(0.004, 0.5)
        assert compare_to_baseline(current, base) == []

    def test_unknown_apps_and_stages_ignored(self):
        base = {"apps": {"other": {"stages": {"cg_pa": 1.0}}}}
        current = self._record(9.0, 9.0)
        assert compare_to_baseline(current, base) == []
