"""The bench ``profile`` block and its regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.perf.bench import run_profile_bench

_GATE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("profile_gate_mod", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def block():
    """One real profile bench on a small app, shared by the module."""
    return run_profile_bench(app="quickstart")


def _baseline_file(tmp_path, block):
    path = tmp_path / "BENCH_pipeline.json"
    path.write_text(json.dumps({"apps": {}, "profile": block}))
    return path


@pytest.mark.profile_smoke
class TestProfileBenchBlock:
    def test_block_shape(self, block):
        assert block["app"] == "quickstart"
        assert set(block["stages"]) == {"cg_pa", "hbg", "refutation"}
        assert 0.0 <= block["coverage"] <= 1.0
        assert block["flamegraph_stacks"] > 0
        assert block["self_overhead_s"] >= 0.0
        for kind in ("pointsto.method", "hb.rule"):
            assert block["top_units"][kind], kind

    def test_block_is_json_serializable(self, block):
        json.dumps(block)


@pytest.mark.profile_smoke
class TestProfileGate:
    def test_missing_profile_block_is_exit_two(self, gate, tmp_path, capsys):
        path = tmp_path / "no_profile.json"
        path.write_text(json.dumps({"apps": {}}))
        assert gate.main(["--profile", "--baseline", str(path)]) == 2
        err = capsys.readouterr().err
        assert "no profile block" in err and "--profile --update" in err

    def test_missing_baseline_file_is_exit_two(self, gate, tmp_path, capsys):
        path = tmp_path / "absent.json"
        assert gate.main(["--profile", "--baseline", str(path)]) == 2
        assert "--profile --update" in capsys.readouterr().err

    def test_malformed_block_is_exit_two(self, gate, tmp_path, block, capsys):
        doctored = json.loads(json.dumps(block))
        del doctored["stages"]["hbg"]
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--profile", "--baseline", str(path)]) == 2
        err = capsys.readouterr().err
        assert "missing stage 'hbg'" in err

    def test_garbage_coverage_is_exit_two(self, gate, tmp_path, block, capsys):
        doctored = json.loads(json.dumps(block))
        doctored["coverage"] = "high"
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--profile", "--baseline", str(path)]) == 2
        assert "not in [0, 1]" in capsys.readouterr().err

    def test_healthy_rerun_passes(self, gate, tmp_path, block, capsys):
        # floor the recorded coverage so a loaded CI box can only pass
        # or fail on structure, not on timing noise
        doctored = json.loads(json.dumps(block))
        doctored["coverage"] = 0.0
        path = _baseline_file(tmp_path, doctored)
        assert gate.main(["--profile", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flamegraph export round-trips" in out

    def test_coverage_collapse_is_exit_one(self, gate, tmp_path, block, capsys):
        doctored = json.loads(json.dumps(block))
        doctored["coverage"] = 1.0
        path = _baseline_file(tmp_path, doctored)
        code = gate.main(["--profile", "--baseline", str(path),
                          "--coverage-slack", "0.000001"])
        assert code == 1
        assert "ATTRIBUTION COVERAGE COLLAPSE" in capsys.readouterr().err


@pytest.mark.profile_smoke
class TestProfileCli:
    def test_profile_command_writes_json_and_flamegraph(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.profile import parse_collapsed

        flame = tmp_path / "out.txt"
        assert main(["profile", "quickstart", "--json",
                     "--flamegraph", str(flame)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["app"] == "quickstart"
        assert summary["coverage"] > 0.0
        rows = parse_collapsed(flame.read_text())
        assert rows and rows[0][0][0] == "sierra"

    def test_profile_command_renders_tables(self, capsys):
        from repro.cli import main

        assert main(["profile", "quickstart", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "points-to cost by method" in out
