"""Race prioritization (§3.1) and benign-guard tagging (§6.5)."""

from repro.core.prioritize import is_benign_guard, rank_races
from repro.core.report import format_table, median


class TestRanking:
    def test_ranks_are_dense_from_one(self, opensudoku_result):
        reports = opensudoku_result.report.reports
        assert [r.rank for r in reports] == list(range(1, len(reports) + 1))

    def test_sorted_by_priority_descending(self, opensudoku_result):
        prios = [r.priority for r in opensudoku_result.report.reports]
        assert prios == sorted(prios, reverse=True)

    def test_app_code_races_ranked(self, newsreader_result):
        for r in newsreader_result.report.reports:
            assert r.tier == "app"

    def test_library_races_ranked_lower(self, small_synth_result):
        reports = small_synth_result.report.reports
        lib = [r for r in reports if r.tier == "library"]
        app = [r for r in reports if r.tier == "app"]
        if lib and app:
            assert max(l.priority for l in lib) < max(a.priority for a in app)

    def test_pointer_race_flagged(self, receiver_result):
        by_field = {r.field_name: r for r in receiver_result.report.reports}
        assert by_field["mDB"].pointer_race  # reference-typed cell
        assert not by_field["isOpen"].pointer_race  # boolean cell

    def test_pointer_race_boosts_priority(self, receiver_result):
        by_field = {r.field_name: r for r in receiver_result.report.reports}
        mdb, isopen = by_field["mDB"], by_field["isOpen"]
        if mdb.benign_guard == isopen.benign_guard and mdb.kind == isopen.kind:
            assert mdb.priority > isopen.priority


class TestDeterministicOrdering:
    """Ranks and fingerprints must be reproducible across runs: the
    run-history ledger diffs runs by fingerprint and the rank column is
    only trustworthy if tie-breaking is total (satellite of the
    history/diffing work)."""

    def test_same_app_twice_identical_report_order(self):
        from repro.cli import load_app
        from repro.core import Sierra, SierraOptions

        def run():
            result = Sierra(SierraOptions()).analyze(load_app("opensudoku"))
            return [
                (r.rank, r.fingerprint, r.field_name, r.pair.actions)
                for r in result.report.reports
            ]

        first, second = run(), run()
        assert first == second
        assert first  # the app reports at least one race

    def test_priority_ties_broken_by_identity_not_input_order(self, opensudoku_result):
        from repro.core.prioritize import _stable_sort_key, rank_races

        def identity(r):
            return (r.field_name, r.pair.actions, repr(r.pair.location))

        reports = opensudoku_result.report.reports
        pairs = [r.pair for r in reports]
        reranked = rank_races(opensudoku_result.extraction, list(reversed(pairs)))
        assert [identity(r) for r in reranked] == [identity(r) for r in reports]
        keys = [_stable_sort_key(r) for r in reports]
        assert len(set(keys)) == len(keys)  # the order is total, not priority-lucky


class TestBenignGuard:
    def test_guard_variable_race_tagged(self, opensudoku_result):
        for r in opensudoku_result.report.reports:
            if r.field_name == "mIsRunning":
                assert r.benign_guard

    def test_plain_race_not_tagged(self, quickstart_result):
        for r in quickstart_result.report.reports:
            assert not r.benign_guard

    def test_is_benign_guard_direct(self, opensudoku_result):
        for p in opensudoku_result.surviving:
            if p.field_name == "mIsRunning":
                assert is_benign_guard(p)

    def test_describe_mentions_flags(self, opensudoku_result):
        for r in opensudoku_result.report.reports:
            text = r.describe()
            assert text.startswith(f"#{r.rank}")
            if r.benign_guard:
                assert "guard-var" in text


class TestReportHelpers:
    def test_format_table_alignment(self):
        rows = [{"A": 1, "BB": "x"}, {"A": 22, "BB": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # constant width

    def test_format_empty(self):
        assert format_table([]) == "(empty)"

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert median([]) == 0.0

    def test_table3_row_keys(self, newsreader_result):
        row = newsreader_result.report.table3_row()
        assert row["App"] == "newsreader"
        assert "Racy Pairs with AS" in row

    def test_table4_row_totals(self, newsreader_result):
        row = newsreader_result.report.table4_row()
        assert abs(row["Total"] - (row["CG+PA"] + row["HBG"] + row["Refutation"])) < 0.01
