"""Symbolic refutation (§5) on the figure apps and synthetic idioms."""

import pytest

from repro.core import Sierra, SierraOptions
from repro.core.refute import RefutationEngine
from repro.corpus import classify_field


def surviving_fields(result):
    return {p.field_name for p in result.surviving}


def candidate_fields(result):
    return {p.field_name for p in result.racy_pairs}


class TestFigure8:
    def test_guarded_cell_refuted_between_actions(self, opensudoku_result):
        """The paper's mAccumTime candidate (run vs onPause) is refuted."""
        acts = {a.id: a for a in opensudoku_result.extraction.actions}
        for p in opensudoku_result.surviving:
            if p.field_name != "mAccumTime":
                continue
            a1, a2 = p.actions
            callbacks = {acts[a1].callback, acts[a2].callback}
            assert callbacks == {"run"}, f"onPause-run pair survived: {callbacks}"

    def test_guard_variable_race_survives(self, opensudoku_result):
        assert "mIsRunning" in surviving_fields(opensudoku_result)

    def test_candidates_included_guarded_pair(self, opensudoku_result):
        acts = {a.id: a for a in opensudoku_result.extraction.actions}
        cross = [
            p
            for p in opensudoku_result.racy_pairs
            if p.field_name == "mAccumTime"
            and {acts[p.actions[0]].callback, acts[p.actions[1]].callback}
            == {"run", "onPause"}
        ]
        assert cross, "the Figure 8 candidate must exist before refutation"


class TestNullGuard:
    def test_null_guarded_data_refuted_but_pointer_race_kept(self, small_synth_result):
        fields_before = candidate_fields(small_synth_result)
        fields_after = surviving_fields(small_synth_result)
        pdata = {f for f in fields_before if f.startswith("pdata_")}
        assert pdata, "null-guard idiom must produce candidates"
        assert not (pdata & fields_after), "null-guarded cell must be refuted"
        pobj = {f for f in fields_after if f.startswith("pobj_")}
        assert pobj, "the pointer guard itself remains a (benign) race"


class TestGroundTruthSweep:
    def test_all_refutable_candidates_eliminated(self, small_synth_result):
        for f in surviving_fields(small_synth_result):
            assert classify_field(f) != "refutable", f

    def test_true_races_not_over_refuted(self, small_synth_result):
        survived = surviving_fields(small_synth_result)
        for prefix in ("evrace_", "bgdata_", "gflag_"):
            assert any(f.startswith(prefix) for f in survived), prefix


class TestEngineMechanics:
    def test_summary_partitions_candidates(self, opensudoku_result):
        stats = opensudoku_result.report.refutation_stats
        assert stats["surviving"] + stats["refuted"] == stats["candidates"]

    def test_budget_starvation_keeps_race(self, opensudoku_apk):
        """With a 1-node budget nothing can be refuted: every candidate is
        reported (the paper's over-approximation on timeout)."""
        result = Sierra(SierraOptions(path_budget=1)).analyze(opensudoku_apk)
        assert result.report.races_after_refutation == result.report.racy_pairs

    def test_refutation_disabled_keeps_all(self, opensudoku_apk):
        result = Sierra(SierraOptions(refute=False)).analyze(opensudoku_apk)
        assert result.report.races_after_refutation == result.report.racy_pairs

    def test_refute_reports_per_pair(self, opensudoku_result):
        engine = RefutationEngine(opensudoku_result.extraction)
        summary = engine.refute_all(opensudoku_result.racy_pairs)
        assert len(summary.results) == len(opensudoku_result.racy_pairs)
        for r in summary.results:
            if not r.is_race:
                assert r.refuted_ordering in ("1<2", "2<1")

    def test_message_constant_facts(self, opensudoku_result):
        engine = RefutationEngine(opensudoku_result.extraction)
        for action in opensudoku_result.extraction.actions:
            facts = engine._facts_of(action)
            assert isinstance(facts, dict)
