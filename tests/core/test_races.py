"""Access collection and racy-pair enumeration."""

from repro.core.accesses import READ, WRITE, accesses_by_location, collect_accesses
from repro.core.races import DATA_RACE, EVENT_RACE, find_racy_pairs, racy_pair_stats


class TestAccessCollection:
    def test_reads_and_writes_collected(self, newsreader_result):
        accesses = collect_accesses(newsreader_result.extraction)
        kinds = {a.kind for a in accesses}
        assert kinds == {READ, WRITE}

    def test_every_access_belongs_to_a_member_context(self, newsreader_result):
        for a in collect_accesses(newsreader_result.extraction):
            assert a.mc in a.action.members

    def test_empty_pointsto_accesses_dropped(self, newsreader_result):
        for a in collect_accesses(newsreader_result.extraction):
            assert a.locations

    def test_location_index(self, newsreader_result):
        accesses = collect_accesses(newsreader_result.extraction)
        index = accesses_by_location(accesses)
        for loc, group in index.items():
            for a in group:
                assert loc in a.locations

    def test_describe_mentions_action(self, newsreader_result):
        a = collect_accesses(newsreader_result.extraction)[0]
        assert "action" in a.describe()


class TestRacyPairs:
    def test_pairs_are_unordered_actions(self, newsreader_result):
        shbg = newsreader_result.shbg
        for p in newsreader_result.racy_pairs:
            a1, a2 = p.actions
            assert a1 != a2
            assert not shbg.comparable(a1, a2)

    def test_pairs_have_a_writer(self, newsreader_result):
        for p in newsreader_result.racy_pairs:
            assert p.access1.is_write or p.access2.is_write

    def test_dedup_per_action_pair_and_location(self, newsreader_result):
        keys = [(p.actions, p.location) for p in newsreader_result.racy_pairs]
        assert len(keys) == len(set(keys))

    def test_event_vs_data_classification(self, newsreader_result):
        by_kind = {}
        for p in newsreader_result.racy_pairs:
            by_kind.setdefault(p.kind, []).append(p)
        # Figure 1 yields both: bg write vs main read (data) and
        # onPostExecute vs onScroll (event)
        assert EVENT_RACE in by_kind
        assert DATA_RACE in by_kind
        for p in by_kind[EVENT_RACE]:
            assert p.access1.action.affinity.same_looper(p.access2.action.affinity)
        for p in by_kind[DATA_RACE]:
            assert not p.access1.action.affinity.same_looper(p.access2.action.affinity)

    def test_figure1_races_found(self, newsreader_result):
        fields = {p.field_name for p in newsreader_result.racy_pairs}
        assert "data" in fields  # doInBackground vs onScroll
        assert "cachedCount" in fields  # onPostExecute vs onScroll

    def test_figure2_races_found(self, receiver_result):
        fields = {p.field_name for p in receiver_result.racy_pairs}
        assert "isOpen" in fields  # onReceive vs onStop
        assert "mDB" in fields  # onReceive vs onDestroy null store

    def test_lifecycle_ordered_fields_not_racy(self, quickstart_result):
        # counter written in onCreate and handlers: onCreate pairs must be
        # ordered away; only handler-vs-handler pairs remain
        for p in quickstart_result.racy_pairs:
            labels = {p.access1.action.callback, p.access2.action.callback}
            assert "onCreate" not in labels

    def test_stats_shape(self, newsreader_result):
        stats = racy_pair_stats(newsreader_result.racy_pairs)
        assert stats["total"] == len(newsreader_result.racy_pairs)
        assert stats["event"] + stats["data"] == stats["total"]
        assert stats["distinct_action_pairs"] <= stats["total"]


class TestOrderedPostsProduceNoRaces:
    def test_rule4_suppresses_sequential_post_pairs(self, small_synth_result):
        """opost_* cells are written by two FIFO-ordered runnables: rules
        4/6 must order them, leaving no racy pair on those fields."""
        fields = {p.field_name for p in small_synth_result.racy_pairs}
        assert not any(f.startswith("opost_") for f in fields)

    def test_cfg_fields_ordered_by_lifecycle(self, small_synth_result):
        fields = {p.field_name for p in small_synth_result.racy_pairs}
        assert not any(f.startswith("cfg_") for f in fields)
