"""Harness generation (§3.2, Figure 4): structure, fixpoint, dispatch."""

from repro.android import CallbackKind
from repro.core.harness import NONDET, generate_harnesses
from repro.ir.instructions import Invoke


class TestStructure:
    def test_one_harness_per_activity(self, small_synth):
        apk, _ = small_synth
        model = generate_harnesses(apk)
        assert model.harness_count() == len(apk.manifest.activities)

    def test_harness_main_is_static_and_valid(self, quickstart_apk):
        model = generate_harnesses(quickstart_apk)
        main = next(iter(model.mains.values()))
        assert main.is_static
        assert main.cfg.entry is not None
        report = quickstart_apk.validate()
        assert report.ok, report.errors

    def test_lifecycle_sites_only_for_overridden(self, quickstart_apk):
        model = generate_harnesses(quickstart_apk)
        callbacks = {s.callback for s in model.sites if s.kind is CallbackKind.LIFECYCLE}
        assert callbacks == {"onCreate"}  # only onCreate is overridden

    def test_lifecycle_instances_split(self, opensudoku_apk):
        model = generate_harnesses(opensudoku_apk)
        resumes = [s for s in model.sites if s.callback == "onResume"]
        assert sorted(s.instance for s in resumes) == [1, 2]

    def test_gui_sites_from_static_layout(self, quickstart_apk):
        model = generate_harnesses(quickstart_apk)
        gui = {s.callback for s in model.sites if s.kind is CallbackKind.GUI}
        assert gui == {"onClickIncrement", "onClickReset"}

    def test_nondet_markers_present(self, quickstart_apk):
        model = generate_harnesses(quickstart_apk)
        main = next(iter(model.mains.values()))
        nondets = [
            i
            for i in main.body
            if isinstance(i, Invoke) and i.method_name == NONDET
        ]
        assert len(nondets) >= 3  # loop exit, stop, destroy choices


class TestFixpoint:
    def test_runtime_listener_discovered(self, newsreader_apk):
        model = generate_harnesses(newsreader_apk)
        assert model.fixpoint_rounds >= 2
        markers = [s for s in model.sites if s.is_marker]
        assert markers, "scroll/click listeners should yield markers"
        assert model.dispatch_table

    def test_receiver_registration_discovered(self, receiver_apk):
        model = generate_harnesses(receiver_apk)
        system = [s for s in model.sites if s.kind is CallbackKind.SYSTEM]
        assert system
        dispatch = system[0].dispatch
        assert dispatch is not None
        assert dispatch.callback_methods == ("onReceive",)

    def test_fixpoint_terminates_without_registrations(self, quickstart_apk):
        model = generate_harnesses(quickstart_apk)
        assert model.fixpoint_rounds == 1

    def test_regeneration_is_stable(self, newsreader_apk):
        m1 = generate_harnesses(newsreader_apk)
        m2 = generate_harnesses(newsreader_apk)
        assert len(m1.sites) == len(m2.sites)
        assert set(m1.dispatch_table) == set(m2.dispatch_table)


class TestComponentsPlacement:
    def test_services_only_in_main_harness(self, small_synth):
        apk, _ = small_synth
        model = generate_harnesses(apk)
        main_activity = apk.manifest.main_activity.class_name
        svc_sites = [
            s
            for s in model.sites
            if s.component in {d.class_name for d in apk.manifest.services}
        ]
        assert svc_sites
        main_harness = model.mains[main_activity].class_name
        assert all(s.harness_class == main_harness for s in svc_sites)

    def test_gui_flows_emitted_in_one_arm(self, small_synth):
        apk, _ = small_synth
        decl = apk.manifest.activities[0]
        if not decl.gui_flows:
            return
        model = generate_harnesses(apk)
        flow = decl.gui_flows[0]
        sites = {
            s.callback: s for s in model.sites_of_harness(decl.class_name)
        }
        main = model.mains[decl.class_name]
        cfg = main.cfg
        first, second = sites[flow[0]], sites[flow[1]]
        assert cfg.instruction_dominates(first.instr, second.instr)
