"""Refutation across call boundaries: constraints flow callee → caller.

The guarded access lives in a helper method; its guard is the helper's
*parameter*, fed from a field read in the action entry. The backward
executor must map the parameter constraint onto the caller's argument
register and land it on the field — then the other action's strong update
refutes, exactly as in the single-method Figure 8 case.
"""

import pytest

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.ir.builder import ProgramBuilder
from repro.ir.types import BOOL, INT


def interprocedural_guard_apk(guard_in_helper: bool = True):
    pb = ProgramBuilder()
    install_framework(pb.program)
    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("flag", BOOL)
    act.field("cell", INT)

    helper = act.method("update", params=[("g", BOOL)])
    if guard_in_helper:
        helper.if_false("g", "skip")
    helper.const("v", 1)
    helper.store("this", "cell", "v")
    if guard_in_helper:
        helper.label("skip").ret()
    else:
        helper.ret()

    runnable = pb.new_class("t.Tick", interfaces=("java.lang.Runnable",))
    runnable.field("owner", "t.A")
    run = runnable.method("run")
    run.load("o", "this", "owner")
    run.load("f", "o", "flag")
    run.call("o", "update", "f")
    run.ret()

    oc = act.method("onCreate")
    oc.const("t", True)
    oc.store("this", "flag", "t")
    oc.ret()

    orr = act.method("onResume")
    orr.new("h", "android.os.Handler")
    orr.new("r", "t.Tick")
    orr.store("r", "owner", "this")
    orr.call("h", "post", "r")
    orr.ret()

    opa = act.method("onPause")
    opa.load("pf", "this", "flag")
    opa.if_false("pf", "done")
    opa.const("ff", False)
    opa.store("this", "flag", "ff")
    opa.const("pv", 2)
    opa.store("this", "cell", "pv")
    opa.label("done").ret()

    apk = Apk("interproc", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", is_main=True)
    return apk


def cross_pairs(result, field):
    acts = {a.id: a for a in result.extraction.actions}
    return [
        p
        for p in result.racy_pairs
        if p.field_name == field
        and {acts[p.actions[0]].callback, acts[p.actions[1]].callback}
        == {"run", "onPause"}
    ]


class TestInterproceduralRefutation:
    def test_candidate_exists(self):
        result = Sierra(SierraOptions()).analyze(interprocedural_guard_apk())
        assert cross_pairs(result, "cell")

    def test_guarded_helper_write_refuted(self):
        """The constraint collected in the helper maps through the call and
        lands on the flag field — the onPause strong update refutes."""
        result = Sierra(SierraOptions()).analyze(interprocedural_guard_apk())
        surviving = {(p.actions, p.location) for p in result.surviving}
        for p in cross_pairs(result, "cell"):
            assert (p.actions, p.location) not in surviving

    def test_unguarded_helper_write_survives(self):
        """Negative control: without the guard the same interprocedural
        write is a real race and must NOT be refuted."""
        result = Sierra(SierraOptions()).analyze(
            interprocedural_guard_apk(guard_in_helper=False)
        )
        surviving = {(p.actions, p.location) for p in result.surviving}
        pairs = cross_pairs(result, "cell")
        assert pairs
        assert all((p.actions, p.location) in surviving for p in pairs)

    def test_guard_race_survives_either_way(self):
        result = Sierra(SierraOptions()).analyze(interprocedural_guard_apk())
        assert any(p.field_name == "flag" for p in result.surviving)
