"""bindService / ServiceConnection: the listener-at-arg-index-1 dispatch."""

import pytest

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.core.actions import ActionKind
from repro.ir.builder import ProgramBuilder
from repro.ir.types import INT


def bind_service_apk():
    """onCreate binds a service with a connection callback that writes a
    field also written by onDestroy — a system-vs-lifecycle race."""
    pb = ProgramBuilder()
    install_framework(pb.program)
    conn = pb.new_class(
        "t.Conn", interfaces=("android.content.ServiceConnection",)
    )
    conn.field("act", "t.A")
    on_conn = conn.method("onServiceConnected")
    on_conn.load("a", "this", "act")
    on_conn.const("v", 1)
    on_conn.store("a", "svcState", "v")
    on_conn.ret()
    on_disc = conn.method("onServiceDisconnected")
    on_disc.load("a", "this", "act")
    on_disc.load("s", "a", "svcState")
    on_disc.ret()

    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("svcState", INT)
    oc = act.method("onCreate")
    oc.new("intent", "android.content.Intent")
    oc.new("c", "t.Conn")
    oc.store("c", "act", "this")
    oc.call("this", "bindService", "intent", "c")  # listener is arg index 1
    oc.ret()
    od = act.method("onDestroy")
    od.const("z", 0)
    od.store("this", "svcState", "z")
    od.ret()

    apk = Apk("bindsvc", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", is_main=True)
    return apk


@pytest.fixture(scope="module")
def result():
    return Sierra(SierraOptions()).analyze(bind_service_apk())


class TestServiceConnectionDispatch:
    def test_connection_callbacks_become_system_actions(self, result):
        system = [a for a in result.extraction.actions if a.kind is ActionKind.SYSTEM]
        callbacks = {a.callback for a in system}
        assert "onServiceConnected" in callbacks
        assert "onServiceDisconnected" in callbacks

    def test_registration_orders_oncreate_first(self, result):
        create = next(a for a in result.extraction.actions if a.callback == "onCreate")
        for a in result.extraction.actions:
            if a.kind is ActionKind.SYSTEM:
                assert result.shbg.ordered(create.id, a.id)

    def test_connection_callbacks_sequenced_in_one_arm(self, result):
        """The harness emits connected; disconnected sequentially, so rule 3
        orders them (a service cannot disconnect before it connected)."""
        by_cb = {
            a.callback: a
            for a in result.extraction.actions
            if a.kind is ActionKind.SYSTEM
        }
        assert result.shbg.ordered(
            by_cb["onServiceConnected"].id, by_cb["onServiceDisconnected"].id
        )

    def test_svc_state_race_with_destroy(self, result):
        fields = {p.field_name for p in result.surviving}
        assert "svcState" in fields
        acts = {a.id: a for a in result.extraction.actions}
        assert any(
            p.field_name == "svcState"
            and ActionKind.SYSTEM in {acts[i].kind for i in p.actions}
            for p in result.surviving
        )
