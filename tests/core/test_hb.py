"""The seven HB rules: Figures 5, 6, 7 and the §6.4 refinements."""

import pytest

from repro.android.lifecycle import EXPECTED_LIFECYCLE_HB, EXPECTED_LIFECYCLE_UNORDERED
from repro.android import install_framework, Apk, Manifest
from repro.core import Sierra, SierraOptions, build_shbg, extract_actions, generate_harnesses
from repro.core.actions import ActionKind
from repro.ir.builder import ProgramBuilder
from repro.ir.types import INT


def full_lifecycle_apk():
    """An activity overriding every lifecycle callback."""
    pb = ProgramBuilder()
    install_framework(pb.program)
    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("f", INT)
    for cb in ("onCreate", "onStart", "onResume", "onPause", "onStop", "onRestart", "onDestroy"):
        m = act.method(cb)
        m.load("v", "this", "f")
        m.ret()
    apk = Apk("lifecycle", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", is_main=True)
    return apk


def analyze(apk):
    harness = generate_harnesses(apk)
    ext = extract_actions(apk, harness)
    shbg = build_shbg(ext)
    return ext, shbg


def lifecycle_action(ext, callback, instance=1):
    for a in ext.actions:
        if (
            a.kind is ActionKind.LIFECYCLE
            and a.callback == callback
            and a.instance == instance
        ):
            return a
    raise AssertionError(f"no action {callback}#{instance}")


class TestRule2LifecycleFigure5:
    """Every HB edge (and non-edge) Figure 5 derives."""

    @pytest.fixture(scope="class")
    def shbg_and_ext(self):
        ext, shbg = analyze(full_lifecycle_apk())
        return ext, shbg

    @pytest.mark.parametrize("pair", EXPECTED_LIFECYCLE_HB)
    def test_expected_edges(self, shbg_and_ext, pair):
        ext, shbg = shbg_and_ext
        (cb1, i1), (cb2, i2) = pair
        a1 = lifecycle_action(ext, cb1, i1)
        a2 = lifecycle_action(ext, cb2, i2)
        assert shbg.ordered(a1.id, a2.id), f"{cb1}#{i1} must precede {cb2}#{i2}"

    @pytest.mark.parametrize("pair", EXPECTED_LIFECYCLE_UNORDERED)
    def test_expected_unordered(self, shbg_and_ext, pair):
        ext, shbg = shbg_and_ext
        (cb1, i1), (cb2, i2) = pair
        a1 = lifecycle_action(ext, cb1, i1)
        a2 = lifecycle_action(ext, cb2, i2)
        assert not shbg.comparable(a1.id, a2.id), f"{cb1}#{i1} vs {cb2}#{i2}"

    def test_no_cycles(self, shbg_and_ext):
        _, shbg = shbg_and_ext
        assert not shbg.closure.has_cycle()


class TestRule3GuiFigure6:
    """onResume ≺ onClick1; onClick2 ≺ onClick3; onClick1 vs onClick2 free."""

    @pytest.fixture(scope="class")
    def gui_setup(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        act.field("f", INT)
        act.method("onResume").ret()
        for name in ("onClick1", "onClick2", "onClick3"):
            m = act.method(name)
            m.load("v", "this", "f")
            m.ret()
        apk = Apk("gui", pb.build(), Manifest("t"))
        decl = apk.manifest.add_activity("t.A", layout="main", is_main=True)
        layout = apk.layouts.new_layout("main")
        layout.add_view(1, "android.widget.Button", static_callbacks=(("onClick", "onClick1"),))
        layout.add_view(2, "android.widget.Button", static_callbacks=(("onClick", "onClick2"),))
        layout.add_view(3, "android.widget.Button", static_callbacks=(("onClick", "onClick3"),))
        decl.gui_flows.append(["onClick2", "onClick3"])
        ext, shbg = analyze(apk)
        by_cb = {a.callback: a for a in ext.actions if a.instance == 1}
        return shbg, by_cb

    def test_resume_precedes_clicks(self, gui_setup):
        shbg, by_cb = gui_setup
        for click in ("onClick1", "onClick2"):
            assert shbg.ordered(by_cb["onResume"].id, by_cb[click].id)

    def test_flow_orders_click2_before_click3(self, gui_setup):
        shbg, by_cb = gui_setup
        assert shbg.ordered(by_cb["onClick2"].id, by_cb["onClick3"].id)

    def test_independent_clicks_unordered(self, gui_setup):
        shbg, by_cb = gui_setup
        assert not shbg.comparable(by_cb["onClick1"].id, by_cb["onClick2"].id)


class TestRule3bVisibility:
    def test_gui_precedes_stop_and_destroy(self, quickstart_result):
        ext, shbg = quickstart_result.extraction, quickstart_result.shbg
        # quickstart has no onStop; build a richer fixture instead
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        act.field("f", INT)
        act.method("onStop").ret()
        act.method("onDestroy").ret()
        h = act.method("onTap")
        h.load("v", "this", "f")
        h.ret()
        apk = Apk("vis", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", layout="m", is_main=True)
        apk.layouts.new_layout("m").add_view(1, "android.widget.Button", static_callbacks=(("onClick", "onTap"),))
        ext2, shbg2 = analyze(apk)
        by_cb = {a.callback: a for a in ext2.actions}
        assert shbg2.ordered(by_cb["onTap"].id, by_cb["onStop"].id)
        assert shbg2.ordered(by_cb["onTap"].id, by_cb["onDestroy"].id)


class TestRule1Invocation:
    def test_poster_precedes_posted(self, opensudoku_result):
        ext, shbg = opensudoku_result.extraction, opensudoku_result.shbg
        for a in ext.actions:
            for parent in a.parents:
                assert shbg.ordered(parent, a.id)


class TestRule4And6Figure7:
    @pytest.fixture(scope="class")
    def posts_setup(self):
        """onCreate posts R1 then R2 (rule 4); onCreate ≺ onStart each post
        one runnable (rule 6: A1≺A2, A1 posts A3, A2 posts A4 ⇒ A3≺A4)."""
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        for n in (1, 2, 3, 4):
            r = pb.new_class(f"t.R{n}", interfaces=("java.lang.Runnable",))
            r.field("owner", "t.A")
            rm = r.method("run")
            rm.load("o", "this", "owner")
            rm.ret()
        act.field("f", INT)
        oc = act.method("onCreate")
        oc.new("h", "android.os.Handler")
        for n in (1, 2):
            oc.new(f"r{n}", f"t.R{n}")
            oc.store(f"r{n}", "owner", "this")
            oc.call("h", "post", f"r{n}")
        oc.ret()
        os_ = act.method("onStart")
        os_.new("h", "android.os.Handler")
        os_.new("r3", "t.R3")
        os_.store("r3", "owner", "this")
        os_.call("h", "post", "r3")
        os_.ret()
        orr = act.method("onResume")
        orr.new("h", "android.os.Handler")
        orr.new("r4", "t.R4")
        orr.store("r4", "owner", "this")
        orr.call("h", "post", "r4")
        orr.ret()
        apk = Apk("posts", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        ext, shbg = analyze(apk)
        runs = {}
        for a in ext.actions:
            if a.kind is ActionKind.MESSAGE:
                runs.setdefault(a.entry_method.class_name, a)
        return shbg, runs

    def test_rule4_orders_sequential_posts(self, posts_setup):
        shbg, runs = posts_setup
        assert shbg.ordered(runs["t.R1"].id, runs["t.R2"].id)
        assert not shbg.ordered(runs["t.R2"].id, runs["t.R1"].id)

    def test_rule6_orders_posts_of_ordered_actions(self, posts_setup):
        """Figure 7: onCreate ≺ onStart ≺ onResume, each posting to the main
        looper ⇒ their messages are ordered the same way."""
        shbg, runs = posts_setup
        assert shbg.ordered(runs["t.R1"].id, runs["t.R3"].id)
        assert shbg.ordered(runs["t.R3"].id, runs["t.R4"].id)
        assert shbg.ordered(runs["t.R2"].id, runs["t.R4"].id)


class TestRule4ParentScoping:
    def test_posts_from_different_instances_not_site_ordered(self, opensudoku_result):
        """onResume"2"'s post must not be ordered before onResume"1"'s post
        by mere site dominance (the bug rule 4's parent check prevents)."""
        ext, shbg = opensudoku_result.extraction, opensudoku_result.shbg
        pause = next(a for a in ext.actions if a.callback == "onPause")
        runs1 = [
            a
            for a in ext.actions
            if a.kind is ActionKind.MESSAGE
            and any(ext.by_id(p).instance == 1 for p in a.parents if ext.by_id(p).kind is ActionKind.LIFECYCLE)
        ]
        assert runs1
        for run in runs1:
            assert not shbg.comparable(pause.id, run.id)


class TestStatsAndEdges:
    def test_ordered_fraction_bounds(self, newsreader_result):
        frac = newsreader_result.shbg.ordered_fraction()
        assert 0.0 < frac < 1.0

    def test_edges_by_rule_nonempty(self, newsreader_result):
        rules = newsreader_result.shbg.edges_by_rule()
        assert "R2-lifecycle" in rules or "R3-gui-order" in rules
        assert rules.get("R1-invocation")

    def test_add_rejects_self_and_cycles(self, quickstart_result):
        shbg = quickstart_result.shbg
        some = shbg.actions[0].id
        assert not shbg.add(some, some, "test")
        # find an ordered pair and try to reverse it
        for a in shbg.actions:
            for b in shbg.actions:
                if shbg.ordered(a.id, b.id):
                    assert not shbg.add(b.id, a.id, "test")
                    return

    def test_unordered_pairs_symmetric_complement(self, quickstart_result):
        shbg = quickstart_result.shbg
        pairs = shbg.unordered_pairs()
        n = len(shbg.actions)
        assert len(pairs) + shbg.hb_edge_count() == n * (n - 1) // 2


class TestAddDedupe:
    """Regression: re-added or transitively-implied edges must not leave
    duplicate HBEdge records behind (the seed recorded them, inflating
    edges_by_rule and the direct-edge list)."""

    def fresh_shbg(self):
        from repro.core.hb import SHBG

        apk = full_lifecycle_apk()
        harness = generate_harnesses(apk)
        ext = extract_actions(apk, harness)
        return SHBG(actions=ext.actions)

    def test_readded_edge_records_once(self):
        shbg = self.fresh_shbg()
        a, b = shbg.actions[0].id, shbg.actions[1].id
        assert shbg.add(a, b, "T") is True
        n = len(shbg.direct_edges)
        assert shbg.add(a, b, "T") is False
        assert len(shbg.direct_edges) == n
        assert shbg.edges_by_rule().get("T") == 1

    def test_transitively_implied_edge_not_recorded(self):
        shbg = self.fresh_shbg()
        a, b, c = (act.id for act in shbg.actions[:3])
        shbg.add(a, b, "T")
        shbg.add(b, c, "T")
        n = len(shbg.direct_edges)
        assert shbg.ordered(a, c)
        assert shbg.add(a, c, "T") is False  # already implied
        assert len(shbg.direct_edges) == n


class TestClosureImplementationEquivalence:
    """build_shbg with the naive set closure and the bitset closure must
    produce identical graphs — rule 6 takes a different code path per
    closure, so this locks the fast path to the reference sweep."""

    @pytest.mark.parametrize("builder", [full_lifecycle_apk])
    def test_generic_vs_bitset_rule_pipeline(self, builder):
        from repro.util.graph import NaiveTransitiveClosure

        apk = builder()
        harness = generate_harnesses(apk)
        ext = extract_actions(apk, harness)
        fast = build_shbg(ext)
        slow = build_shbg(ext, closure=NaiveTransitiveClosure())
        assert fast.edges_by_rule() == slow.edges_by_rule()
        assert fast.hb_edge_count() == len(slow.closure.closure_edges())
        for a in ext.actions:
            for b in ext.actions:
                assert fast.ordered(a.id, b.id) == slow.ordered(a.id, b.id)

    def test_generic_vs_bitset_on_synthetic_app(self, small_synth):
        from repro.util.graph import NaiveTransitiveClosure

        apk, _truth = small_synth
        harness = generate_harnesses(apk)
        ext = extract_actions(apk, harness)
        fast = build_shbg(ext)
        slow = build_shbg(ext, closure=NaiveTransitiveClosure())
        assert fast.edges_by_rule() == slow.edges_by_rule()
        assert fast.closure.closure_edges() == slow.closure.closure_edges()
