"""Index-sensitive array analysis (the paper's §6.5 future-work item)."""

import pytest

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.ir.builder import ProgramBuilder


def array_apk():
    """Two handlers write *different constant slots* of a shared array:
    index-insensitively they conflict on the summary cell (a false
    positive); index-sensitively the cells are distinct.

    A third handler uses a variable index — it must keep conflicting with
    everything (the summary cell remains sound)."""
    pb = ProgramBuilder()
    install_framework(pb.program)
    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("slots", "java.util.ArrayList")
    oc = act.method("onCreate")
    oc.new("a", "java.util.ArrayList")
    oc.store("this", "slots", "a")
    oc.ret()
    h0 = act.method("onWriteSlot0")
    h0.load("a", "this", "slots")
    h0.astore("a", 0, 10)
    h0.ret()
    h1 = act.method("onWriteSlot1")
    h1.load("a", "this", "slots")
    h1.astore("a", 1, 20)
    h1.ret()
    hv = act.method("onWriteVar")
    hv.load("a", "this", "slots")
    hv.call_static("$nondet$", dst="i")
    hv.astore("a", "i", 30)
    hv.ret()
    apk = Apk("arrays", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", layout="m", is_main=True)
    layout = apk.layouts.new_layout("m")
    layout.add_view(1, "android.widget.Button", static_callbacks=(("onClick", "onWriteSlot0"),))
    layout.add_view(2, "android.widget.Button", static_callbacks=(("onClick", "onWriteSlot1"),))
    layout.add_view(3, "android.widget.Button", static_callbacks=(("onClick", "onWriteVar"),))
    return apk


def pair_callbacks(result):
    acts = {a.id: a for a in result.extraction.actions}
    return {
        frozenset({acts[p.actions[0]].callback, acts[p.actions[1]].callback})
        for p in result.surviving
    }


class TestIndexInsensitiveBaseline:
    def test_constant_slots_conflict_without_refinement(self):
        result = Sierra(SierraOptions()).analyze(array_apk())
        pairs = pair_callbacks(result)
        assert frozenset({"onWriteSlot0", "onWriteSlot1"}) in pairs


class TestIndexSensitiveRefinement:
    def test_distinct_constant_slots_no_longer_conflict(self):
        result = Sierra(SierraOptions(index_sensitive_arrays=True)).analyze(array_apk())
        pairs = pair_callbacks(result)
        assert frozenset({"onWriteSlot0", "onWriteSlot1"}) not in pairs

    def test_variable_index_still_conflicts(self):
        """Soundness: the unknown-index write races with both constant
        slots even under the refinement."""
        result = Sierra(SierraOptions(index_sensitive_arrays=True)).analyze(array_apk())
        pairs = pair_callbacks(result)
        assert frozenset({"onWriteVar", "onWriteSlot0"}) in pairs
        assert frozenset({"onWriteVar", "onWriteSlot1"}) in pairs

    def test_refinement_monotonically_reduces_reports(self):
        base = Sierra(SierraOptions()).analyze(array_apk())
        refined = Sierra(SierraOptions(index_sensitive_arrays=True)).analyze(array_apk())
        assert refined.report.racy_pairs < base.report.racy_pairs
