"""Pipeline robustness on degenerate inputs."""

import pytest

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.ir.builder import ProgramBuilder
from repro.ir.types import INT


def empty_apk():
    pb = ProgramBuilder()
    install_framework(pb.program)
    return Apk("empty", pb.build(), Manifest("t"))


class TestDegenerateApps:
    def test_no_activities(self):
        result = Sierra(SierraOptions()).analyze(empty_apk())
        assert result.report.harnesses == 0
        assert result.report.actions == 0
        assert result.report.races_after_refutation == 0

    def test_activity_with_no_callbacks(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        pb.new_class("t.A", superclass="android.app.Activity")
        apk = Apk("bare", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        result = Sierra(SierraOptions()).analyze(apk)
        assert result.report.harnesses == 1
        assert result.report.actions == 0

    def test_activity_with_only_helper_methods(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        helper = act.method("compute")
        helper.const("x", 1)
        helper.ret("x")
        apk = Apk("helpers", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        result = Sierra(SierraOptions()).analyze(apk)
        assert result.report.races_after_refutation == 0

    def test_self_posting_only_app_terminates(self):
        """A runnable that only ever reposts itself: extraction must not
        unroll forever (chain cutoff)."""
        pb = ProgramBuilder()
        install_framework(pb.program)
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        r.field("handler", "android.os.Handler")
        run = r.method("run")
        run.load("h", "this", "handler")
        run.call("h", "post", "this")
        run.ret()
        act = pb.new_class("t.A", superclass="android.app.Activity")
        oc = act.method("onCreate")
        oc.new("h", "android.os.Handler")
        oc.new("r", "t.R")
        oc.store("r", "handler", "h")
        oc.call("h", "post", "r")
        oc.ret()
        apk = Apk("selfpost", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        result = Sierra(SierraOptions()).analyze(apk)
        runs = [a for a in result.extraction.actions if a.entry_method.name == "run"]
        assert 1 <= len(runs) <= 2  # root post + one collapsed repost child

    def test_mutual_posting_cycle_terminates(self):
        """R1 posts R2, R2 posts R1 — extraction must collapse the cycle."""
        pb = ProgramBuilder()
        install_framework(pb.program)
        for a, b in (("R1", "R2"), ("R2", "R1")):
            cls = pb.program.classes.get(f"t.{a}")
            if cls is None:
                pb.new_class(f"t.{a}", interfaces=("java.lang.Runnable",))
        for a, b in (("R1", "R2"), ("R2", "R1")):
            cb = pb.class_builder(f"t.{a}")
            cb.field("handler", "android.os.Handler")
            cb.field("other", f"t.{b}")
            run = cb.method("run")
            run.load("h", "this", "handler")
            run.load("o", "this", "other")
            run.call("h", "post", "o")
            run.ret()
        act = pb.new_class("t.A", superclass="android.app.Activity")
        oc = act.method("onCreate")
        oc.new("h", "android.os.Handler")
        oc.new("r1", "t.R1")
        oc.new("r2", "t.R2")
        oc.store("r1", "handler", "h")
        oc.store("r2", "handler", "h")
        oc.store("r1", "other", "r2")
        oc.store("r2", "other", "r1")
        oc.call("h", "post", "r1")
        oc.ret()
        apk = Apk("cycle", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        result = Sierra(SierraOptions()).analyze(apk)
        assert len(result.extraction.actions) < 20  # bounded, not unrolled

    def test_listener_registered_with_null_is_ignored(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        oc = act.method("onCreate")
        oc.call("this", "findViewById", 1, dst="v")
        oc.const("nul", None)
        oc.call("v", "setOnClickListener", "nul")
        oc.ret()
        apk = Apk("nulreg", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", layout="m", is_main=True)
        apk.layouts.new_layout("m").add_view(1, "android.widget.Button")
        result = Sierra(SierraOptions()).analyze(apk)  # must not crash
        assert result.report.harnesses == 1

    def test_find_view_with_unknown_id(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        act = pb.new_class("t.A", superclass="android.app.Activity")
        act.field("v", "android.view.View")
        oc = act.method("onCreate")
        oc.call("this", "findViewById", 999, dst="v")  # not in any layout
        oc.store("this", "v", "v")
        oc.ret()
        apk = Apk("ghostview", pb.build(), Manifest("t"))
        apk.manifest.add_activity("t.A", is_main=True)
        result = Sierra(SierraOptions()).analyze(apk)
        assert result.report.harnesses == 1


class TestOptionEdges:
    def test_zero_actions_ordered_fraction(self):
        result = Sierra(SierraOptions()).analyze(empty_apk())
        assert result.report.ordered_fraction == 0.0

    def test_k_zero_still_runs(self):
        from repro.corpus import build_quickstart_app

        result = Sierra(SierraOptions(k=0)).analyze(build_quickstart_app())
        assert result.report.races_after_refutation >= 1
