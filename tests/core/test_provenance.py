"""Race provenance: the evidence bundle behind every reported race."""

from __future__ import annotations

import json

import pytest

from repro.core import Sierra, SierraOptions, render_evidence_tree


@pytest.fixture(scope="module")
def sudoku_result(request):
    apk = request.getfixturevalue("opensudoku_apk")
    return Sierra(SierraOptions()).analyze(apk)


class TestProvenanceBundle:
    def test_every_report_carries_provenance(self, sudoku_result):
        reports = sudoku_result.report.reports
        assert reports
        for report in reports:
            assert report.provenance is not None
            d = report.provenance.to_dict()
            assert set(d) == {"hb", "aliasing", "refutation", "refuted_siblings"}

    def test_hb_evidence_names_the_gap(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        hb = report.provenance.hb
        a, b = report.pair.actions
        assert hb["ordered"] is False
        assert set(hb["actions"]) == {str(a), str(b)}
        # every action block names the rules that did order it elsewhere
        for info in hb["actions"].values():
            assert "describe" in info and "incident_rules" in info

    def test_fork_evidence_chains_reach_the_actions(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        hb = report.provenance.hb
        fork = hb["fork_evidence"]
        assert fork is not None
        a, b = report.pair.actions
        assert fork["fork"] in hb["fork_points"]
        # rule-labeled derivation chains start at the fork point and end at
        # the respective action
        for chain, target in ((fork["chain_to_a"], a), (fork["chain_to_b"], b)):
            assert chain[0]["src"] == fork["fork"]
            assert chain[-1]["dst"] == target
            assert all(edge["rule"] for edge in chain)

    def test_fork_points_are_latest_common_ancestors(self, sudoku_result):
        shbg = sudoku_result.shbg
        report = sudoku_result.report.reports[0]
        a, b = report.pair.actions
        forks = shbg.fork_points(a, b)
        ancestors = shbg.common_ancestors(a, b)
        assert set(forks) <= set(ancestors)
        # no other common ancestor is ordered after a fork point
        for fork in forks:
            assert not any(shbg.ordered(fork, c) for c in ancestors if c != fork)

    def test_aliasing_evidence_shows_overlap(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        al = report.provenance.aliasing
        assert al["location"]["field"] == report.field_name
        assert len(al["accesses"]) == 2
        kinds = {access["kind"] for access in al["accesses"]}
        assert "write" in kinds
        assert al["overlap"]["items"], "racy accesses must share a location"

    def test_refutation_evidence_for_survivor(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        ref = report.provenance.refutation
        assert ref["enabled"] is True
        assert ref["verdict"] == "race"
        assert ref["refuted_ordering"] is None

    def test_refutation_disabled_is_explicit(self, opensudoku_apk):
        result = Sierra(SierraOptions(refute=False)).analyze(opensudoku_apk)
        ref = result.report.reports[0].provenance.refutation
        assert ref == {"enabled": False}

    def test_report_json_includes_provenance(self, sudoku_result):
        d = sudoku_result.report.to_dict()
        json.dumps(d)  # bundle must stay JSON-clean
        assert d["reports"]
        for entry in d["reports"]:
            assert entry["provenance"]["hb"]["ordered"] is False


class TestEvidenceTree:
    def test_render_names_all_three_pillars(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        tree = render_evidence_tree(report)
        a, b = report.pair.actions
        assert f"race #{report.rank}" in tree
        assert f"actions {a} and {b} are unordered" in tree
        assert "fork point" in tree
        assert "aliasing" in tree
        assert "refutation: survived" in tree

    def test_render_without_provenance_degrades(self, sudoku_result):
        report = sudoku_result.report.reports[0]
        stashed, report.provenance = report.provenance, None
        try:
            assert "no provenance" in render_evidence_tree(report)
        finally:
            report.provenance = stashed


class TestExplainCli:
    def test_explain_by_rank(self, capsys):
        from repro.cli import main

        assert main(["explain", "opensudoku", "1"]) == 0
        out = capsys.readouterr().out
        assert "race #1" in out
        assert "happens-before" in out

    def test_explain_by_field_name(self, capsys):
        from repro.cli import main

        assert main(["explain", "opensudoku", "1"]) == 0
        field = None
        for line in capsys.readouterr().out.splitlines():
            if "aliasing: both may touch" in line:
                field = line.rsplit(".", 1)[-1]
        assert field
        assert main(["explain", "opensudoku", field]) == 0
        assert f"race #" in capsys.readouterr().out

    def test_explain_unknown_race_exits_2(self, capsys):
        from repro.cli import main

        assert main(["explain", "opensudoku", "9999"]) == 2
        assert "no reported race" in capsys.readouterr().err
