"""Worker-pool failure must degrade loudly, retry once, and stay exact.

These patch ``repro.core.refute._refute_chunk`` — the function the forked
workers execute — to crash, which is precisely the "bug in the worker
itself" case the old ``except Exception: return None`` used to swallow.
Fork-based workers inherit the patched module, so the crash happens on the
real process-pool path.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import RefutationEngine, WorkerPoolError
from repro.core import refute as refute_mod


def _crashing_chunk(chunk_index):
    raise RuntimeError(f"injected worker crash in chunk {chunk_index}")


_real_chunk = refute_mod._refute_chunk

#: flag-file path for the transient-crash scenario; the forked workers
#: inherit the patched value, and the file is how attempt 1 tells attempt 2's
#: fresh workers that the crash already happened
_FLAKY_FLAG = ""


def _flaky_chunk(chunk_index):
    import os

    if not os.path.exists(_FLAKY_FLAG):
        open(_FLAKY_FLAG, "w").close()
        raise RuntimeError("transient worker crash")
    return _real_chunk(chunk_index)


@pytest.fixture()
def engine_and_pairs(small_synth_result):
    result = small_synth_result
    engine = RefutationEngine(result.extraction)
    return engine, result.racy_pairs


class TestLoudDegradation:
    def test_worker_crash_falls_back_to_serial_with_identical_results(
        self, engine_and_pairs, monkeypatch
    ):
        engine, pairs = engine_and_pairs
        serial = RefutationEngine(engine.ext).refute_all(pairs, parallelism=1)

        monkeypatch.setattr(refute_mod, "_refute_chunk", _crashing_chunk)
        with obs.Recorder() as rec:
            degraded = engine.refute_all(pairs, parallelism=3)

        assert degraded.degraded
        assert "injected worker crash" in degraded.degraded_reason
        # the serial fallback is the reference implementation: same verdicts
        assert [r.is_race for r in degraded.results] == [
            r.is_race for r in serial.results
        ]
        assert [r.pair for r in degraded.results] == [r.pair for r in serial.results]
        # stats match serial except for the degraded flag itself
        expect = dict(serial.stats(), degraded=1)
        assert degraded.stats() == expect

    def test_crash_is_retried_once_then_degrades(self, engine_and_pairs, monkeypatch):
        engine, pairs = engine_and_pairs
        monkeypatch.setattr(refute_mod, "_refute_chunk", _crashing_chunk)
        with obs.Recorder() as rec:
            engine.refute_all(pairs, parallelism=2)
        # one warning per attempt, then the degraded event
        assert len(rec.warnings()) == 2
        assert "attempt 1/2" in rec.warnings()[0]
        assert "attempt 2/2" in rec.warnings()[1]
        assert len(rec.degradations()) == 1
        assert "degraded to serial" in rec.degradations()[0]

    def test_transient_crash_recovers_without_degrading(
        self, engine_and_pairs, monkeypatch, tmp_path
    ):
        engine, pairs = engine_and_pairs
        import sys

        monkeypatch.setattr(
            sys.modules[__name__], "_FLAKY_FLAG", str(tmp_path / "crashed-once")
        )
        monkeypatch.setattr(refute_mod, "_refute_chunk", _flaky_chunk)
        with obs.Recorder() as rec:
            summary = engine.refute_all(pairs, parallelism=2)
        # attempt 1 crashes (one warning), the retry succeeds: no degradation
        assert len(rec.warnings()) == 1
        assert "attempt 1/2" in rec.warnings()[0]
        assert not rec.degradations()
        assert not summary.degraded
        serial = RefutationEngine(engine.ext).refute_all(pairs, parallelism=1)
        assert summary.stats() == serial.stats()

    def test_worker_pool_error_carries_cause_traceback(
        self, engine_and_pairs, monkeypatch
    ):
        engine, pairs = engine_and_pairs
        monkeypatch.setattr(refute_mod, "_refute_chunk", _crashing_chunk)
        with pytest.raises(WorkerPoolError) as excinfo:
            refute_mod._refute_parallel(engine.ext, pairs, 5000, 2, 2)
        err = excinfo.value
        assert isinstance(err.cause, RuntimeError)
        assert "injected worker crash" in err.cause_traceback

    def test_serial_path_never_degrades(self, engine_and_pairs):
        engine, pairs = engine_and_pairs
        summary = engine.refute_all(pairs, parallelism=1)
        assert not summary.degraded
        assert summary.degraded_reason is None
        assert summary.stats()["degraded"] == 0
