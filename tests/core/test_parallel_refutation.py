"""Parallel refutation must be a pure speedup: identical results at any N."""

from __future__ import annotations

import pytest

from repro.core import Sierra, SierraOptions


def _comparable_dict(result):
    d = result.report.to_dict()
    d.pop("timings_seconds", None)
    # worker-process wall time is not aggregated identically; the logical
    # effort counters still are, so only drop the timing-ish keys
    return d


def _analyze(apk, parallelism):
    return Sierra(SierraOptions(parallelism=parallelism)).analyze(apk)


class TestParallelRefutationEquivalence:
    def test_serial_vs_four_workers_synthetic(self, small_synth):
        apk, _truth = small_synth
        serial = _analyze(apk, 1)
        parallel = _analyze(apk, 4)
        assert _comparable_dict(serial) == _comparable_dict(parallel)
        assert [p.field_name for p in serial.surviving] == [
            p.field_name for p in parallel.surviving
        ]

    def test_serial_vs_four_workers_figure_app(self, opensudoku_apk):
        serial = _analyze(opensudoku_apk, 1)
        parallel = _analyze(opensudoku_apk, 4)
        assert _comparable_dict(serial) == _comparable_dict(parallel)

    def test_parallelism_does_not_change_refutation_stats(self, small_synth):
        apk, _truth = small_synth
        serial = _analyze(apk, 1)
        parallel = _analyze(apk, 3)
        assert (
            serial.report.refutation_stats == parallel.report.refutation_stats
        )

    def test_serial_and_parallel_scrape_identical_metric_totals(self, small_synth):
        # the registry is the single source of truth for BENCH/RUN counters;
        # a worker pool must not change what a scrape sees
        from repro.obs import metrics

        apk, _truth = small_synth
        _analyze(apk, 1)
        serial_totals = metrics.registry().totals()
        _analyze(apk, 4)
        parallel_totals = metrics.registry().totals()
        assert serial_totals == parallel_totals
        assert serial_totals["refutation.candidates"] > 0
