"""Handler/Looper association (§4.4) beyond the main looper.

Two handlers bound to the same HandlerThread looper produce same-looper
(event-race-eligible) actions; a main-looper handler and a HandlerThread
handler produce cross-looper (data-race) actions.
"""

import pytest

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.core.actions import ActionKind
from repro.ir.builder import ProgramBuilder
from repro.ir.types import INT


def looper_apk(shared_looper: bool):
    """onCreate spawns a HandlerThread and posts R1/R2 through handlers.

    ``shared_looper=True`` binds both handlers to the HandlerThread;
    otherwise R2 goes through a main-looper handler.
    """
    pb = ProgramBuilder()
    install_framework(pb.program)
    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("cell", INT)
    for n in (1, 2):
        r = pb.new_class(f"t.R{n}", interfaces=("java.lang.Runnable",))
        r.field("owner", "t.A")
        rm = r.method("run")
        rm.load("o", "this", "owner")
        rm.const("v", n)
        rm.store("o", "cell", "v")
        rm.ret()
    oc = act.method("onCreate")
    oc.new("ht", "android.os.HandlerThread")
    oc.call("ht", "start")
    oc.call("ht", "getLooper", dst="bg_lp")
    oc.new("h1", "android.os.Handler")
    oc.call_special("h1", "android.os.Handler.<init>", "bg_lp")
    if shared_looper:
        oc.new("h2", "android.os.Handler")
        oc.call_special("h2", "android.os.Handler.<init>", "bg_lp")
    else:
        oc.call_static("android.os.Looper.getMainLooper", dst="main_lp")
        oc.new("h2", "android.os.Handler")
        oc.call_special("h2", "android.os.Handler.<init>", "main_lp")
    oc.new("r1", "t.R1")
    oc.store("r1", "owner", "this")
    # deliberately post r2 FIRST so rule 4 cannot order r1 before r2 unless
    # they share a queue... then check affinity classification instead
    oc.new("r2", "t.R2")
    oc.store("r2", "owner", "this")
    oc.call("h1", "post", "r1")
    oc.call("h2", "post", "r2")
    oc.ret()
    apk = Apk("loopers", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", is_main=True)
    return apk


def message_actions(result):
    return {
        a.entry_method.class_name: a
        for a in result.extraction.actions
        if a.kind is ActionKind.MESSAGE
    }


class TestHandlerThreadAffinity:
    def test_handler_thread_looper_not_main(self):
        result = Sierra(SierraOptions()).analyze(looper_apk(shared_looper=True))
        runs = message_actions(result)
        assert runs["t.R1"].affinity.kind == "looper"
        assert runs["t.R2"].affinity.kind == "looper"

    def test_same_looper_messages_are_event_race_eligible(self):
        result = Sierra(SierraOptions()).analyze(looper_apk(shared_looper=True))
        runs = message_actions(result)
        assert runs["t.R1"].affinity.same_looper(runs["t.R2"].affinity)

    def test_same_looper_posts_fifo_ordered(self):
        """Rule 4 applies on the shared HandlerThread queue: no race."""
        result = Sierra(SierraOptions()).analyze(looper_apk(shared_looper=True))
        runs = message_actions(result)
        assert result.shbg.ordered(runs["t.R1"].id, runs["t.R2"].id)
        assert not any(p.field_name == "cell" for p in result.surviving)

    def test_cross_looper_messages_race(self):
        """Different loopers: rule 4's FIFO argument is void, the writes on
        ``cell`` race (a cross-looper data race)."""
        result = Sierra(SierraOptions()).analyze(looper_apk(shared_looper=False))
        runs = message_actions(result)
        assert runs["t.R2"].affinity.is_main()
        assert not runs["t.R1"].affinity.same_looper(runs["t.R2"].affinity)
        racy_fields = {p.field_name for p in result.surviving}
        assert "cell" in racy_fields
        (pair,) = [p for p in result.surviving if p.field_name == "cell"]
        assert pair.kind == "data"

    def test_distinct_handler_threads_distinct_loopers(self):
        pb = ProgramBuilder()
        install_framework(pb.program)
        mb = pb.new_class("t.C").method("m")
        mb.new("ht1", "android.os.HandlerThread")
        mb.new("ht2", "android.os.HandlerThread")
        mb.call("ht1", "getLooper", dst="lp1")
        mb.call("ht2", "getLooper", dst="lp2")
        mb.ret()
        from repro.analysis import Entry, analyze

        res = analyze(pb.program, [Entry(mb.method)])
        mc = [n for n in res.call_graph.nodes if n.method is mb.method][0]
        assert res.var(mc, "lp1") != res.var(mc, "lp2")
