"""Action extraction: kinds, parents, recursion collapse, affinity."""

from repro.core.actions import ActionKind
from repro.core.extract import extract_actions
from repro.core.harness import generate_harnesses


def actions_by_label(extraction):
    table = {}
    for a in extraction.actions:
        table.setdefault(a.label, []).append(a)
    return table


class TestKinds:
    def test_newsreader_action_inventory(self, newsreader_result):
        ext = newsreader_result.extraction
        kinds = {a.kind for a in ext.actions}
        assert ActionKind.LIFECYCLE in kinds
        assert ActionKind.GUI in kinds
        assert ActionKind.ASYNC_BG in kinds
        assert ActionKind.ASYNC_CB in kinds

    def test_receiver_app_has_system_action(self, receiver_result):
        kinds = {a.kind for a in receiver_result.extraction.actions}
        assert ActionKind.SYSTEM in kinds

    def test_opensudoku_message_actions(self, opensudoku_result):
        ext = opensudoku_result.extraction
        runs = [a for a in ext.actions if a.kind is ActionKind.MESSAGE]
        assert len(runs) >= 2  # per-resume-instance run actions


class TestParents:
    def test_async_task_parented_by_clicking_action(self, newsreader_result):
        ext = newsreader_result.extraction
        table = actions_by_label(ext)
        bg = next(a for a in ext.actions if a.kind is ActionKind.ASYNC_BG)
        parents = {ext.by_id(p).kind for p in bg.parents}
        assert ActionKind.GUI in parents

    def test_marker_event_parented_by_registering_action(self, receiver_result):
        ext = receiver_result.extraction
        receive = next(a for a in ext.actions if a.kind is ActionKind.SYSTEM)
        assert receive.parents
        parent = ext.by_id(next(iter(receive.parents)))
        assert parent.callback == "onCreate"

    def test_lifecycle_actions_have_no_parents(self, quickstart_result):
        ext = quickstart_result.extraction
        for a in ext.actions:
            if a.kind is ActionKind.LIFECYCLE:
                assert not a.parents

    def test_self_repost_collapses(self, opensudoku_result):
        """TimerRunnable posts itself: the chain must be finite, and the
        collapsed repost stays inside its ancestor action."""
        ext = opensudoku_result.extraction
        runs = [a for a in ext.actions if a.entry_method.name == "run"]
        # onResume"1", onResume"2" roots plus exactly one repost child each
        assert len(runs) == 4
        # chain = event ancestor + post site (+ repost site); never unbounded
        for a in runs:
            assert len(a.chain) <= 3


class TestAffinity:
    def test_event_actions_on_main(self, newsreader_result):
        for a in newsreader_result.extraction.actions:
            if a.kind.is_event:
                assert a.affinity.is_main()

    def test_async_bg_on_fresh_background(self, newsreader_result):
        ext = newsreader_result.extraction
        bgs = [a for a in ext.actions if a.kind is ActionKind.ASYNC_BG]
        keys = {a.affinity.key for a in bgs}
        assert all(a.affinity.kind == "background" for a in bgs)
        assert len(keys) == len(bgs)  # never share a thread

    def test_async_cb_on_main(self, newsreader_result):
        ext = newsreader_result.extraction
        for a in ext.actions:
            if a.kind is ActionKind.ASYNC_CB:
                assert a.affinity.is_main()

    def test_posted_runnable_on_main_looper(self, opensudoku_result):
        ext = opensudoku_result.extraction
        for a in ext.actions:
            if a.kind is ActionKind.MESSAGE:
                assert a.affinity.is_main()

    def test_same_looper_predicate(self, newsreader_result):
        from repro.core.actions import Affinity

        assert Affinity.MAIN.same_looper(Affinity.MAIN)
        assert not Affinity("background", 1).same_looper(Affinity("background", 1))
        assert not Affinity.MAIN.same_looper(Affinity("background", 2))


class TestMembership:
    def test_members_cover_entry_method(self, newsreader_result):
        for a in newsreader_result.extraction.actions:
            assert a.entry_method in a.member_methods

    def test_action_sensitive_members_tagged(self, newsreader_result):
        ext = newsreader_result.extraction
        for a in ext.actions:
            for mc in a.members:
                assert mc.action_id() == a.id

    def test_resolver_round_trip(self, newsreader_result):
        ext = newsreader_result.extraction
        for a in ext.actions:
            if a.creation_site is None or a.kind.is_event:
                continue
            parent = next(iter(a.parents), None)
            if parent is None:
                continue
            parent_action = ext.by_id(parent)
            if not parent_action.members:
                continue
            caller_mc = parent_action.members[0]
            assert ext.resolver(caller_mc, a.creation_site, a.entry_method) == a.id


class TestWithoutActionSensitivity:
    def test_hybrid_members_fall_back_to_methods(self, newsreader_apk):
        from repro.analysis.context import HybridSelector

        harness = generate_harnesses(newsreader_apk)
        ext = extract_actions(newsreader_apk, harness, selector=HybridSelector())
        for a in ext.actions:
            assert a.members, a
            assert all(mc.action_id() is None for mc in a.members)
