"""End-to-end Sierra pipeline behaviour and options."""

from repro.core import Sierra, SierraOptions, analyze_apk


class TestPipeline:
    def test_report_counts_consistent(self, newsreader_result):
        r = newsreader_result.report
        assert r.races_after_refutation == len(r.reports)
        assert r.races_after_refutation <= r.racy_pairs
        assert r.actions == len(newsreader_result.extraction.actions)
        assert r.harnesses == newsreader_result.harness.harness_count()

    def test_stage_timings_positive(self, newsreader_result):
        r = newsreader_result.report
        assert r.time_cg_pa > 0
        assert r.time_hbg >= 0
        assert r.time_total >= r.time_cg_pa

    def test_analysis_is_deterministic(self, opensudoku_apk):
        r1 = Sierra(SierraOptions()).analyze(opensudoku_apk)
        r2 = Sierra(SierraOptions()).analyze(opensudoku_apk)
        assert r1.report.actions == r2.report.actions
        assert r1.report.hb_edges == r2.report.hb_edges
        assert sorted(p.field_name for p in r1.surviving) == sorted(
            p.field_name for p in r2.surviving
        )

    def test_analyze_apk_shortcut(self, quickstart_apk):
        result = analyze_apk(quickstart_apk)
        assert result.report.app == "quickstart"


class TestOptions:
    def test_compare_without_as_fills_column(self, small_synth_result):
        assert small_synth_result.report.racy_pairs_no_as is not None
        assert (
            small_synth_result.report.racy_pairs_no_as
            >= small_synth_result.report.racy_pairs
        )

    def test_without_as_not_computed_by_default(self, newsreader_result):
        assert newsreader_result.report.racy_pairs_no_as is None

    def test_context_sweep_monotonic_precision(self, small_synth):
        """Weaker abstractions must not report fewer pairs than the
        action-sensitive default on the factory-laden synthetic app."""
        apk, _ = small_synth
        counts = {}
        for selector in ("insensitive", "action"):
            result = Sierra(SierraOptions(selector=selector, refute=False)).analyze(apk)
            counts[selector] = result.report.racy_pairs
        assert counts["insensitive"] >= counts["action"]

    def test_benign_guard_count(self, opensudoku_result):
        assert opensudoku_result.report.benign_guard_count() >= 1
