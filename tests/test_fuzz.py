"""Fuzzing: randomly generated IR methods must never crash the stack.

Random (but label/register-closed) method bodies are run through the
validator, the pointer analysis, the full detector pipeline, and the
concrete interpreter. No assertion about *what* they compute — only that
every layer is total on arbitrary well-formed input.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.android import Apk, Manifest, install_framework
from repro.core import Sierra, SierraOptions
from repro.dynamic.scheduler import ExecutionDriver
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import BinOp, CmpOp
from repro.ir.validate import validate_program

REGISTERS = ["r0", "r1", "r2", "r3"]
FIELDS = ["f0", "f1"]
LABELS = ["L0", "L1", "L2"]


@st.composite
def instruction_ops(draw):
    """A recipe list the emitter below turns into a closed method body."""
    n = draw(st.integers(1, 14))
    ops = []
    for _ in range(n):
        ops.append(
            draw(
                st.sampled_from(
                    ["const", "move", "new", "load", "store", "binop", "cmp",
                     "if", "goto", "label", "sload", "sstore", "aload",
                     "astore", "call_view", "post"]
                )
            )
        )
    return ops


def emit_method(mb, ops, rng_ints):
    """Turn the op recipe into a valid body: all registers pre-defined, all
    labels emitted, branches only target declared labels."""
    for reg in REGISTERS:
        mb.const(reg, 0)
    mb.new("obj", "t.Holder")
    mb.new("h", "android.os.Handler")
    mb.new("runner", "t.Run")
    used_labels = set()
    import itertools

    it = itertools.cycle(rng_ints or [0])

    def nxt(limit):
        return next(it) % limit

    for op in ops:
        a, b = REGISTERS[nxt(4)], REGISTERS[nxt(4)]
        field = FIELDS[nxt(2)]
        label = LABELS[nxt(3)]
        if op == "const":
            mb.const(a, nxt(10) - 5)
        elif op == "move":
            mb.move(a, b)
        elif op == "new":
            mb.new(a, "t.Holder")
        elif op == "load":
            mb.load(a, "obj", field)
        elif op == "store":
            mb.store("obj", field, b)
        elif op == "binop":
            mb.binop(a, b, list(BinOp)[nxt(len(BinOp))], nxt(5))
        elif op == "cmp":
            mb.cmp(a, b, list(CmpOp)[nxt(len(CmpOp))], nxt(5))
        elif op == "if":
            mb.if_(a, list(CmpOp)[nxt(len(CmpOp))], nxt(3), label)
            used_labels.add(label)
        elif op == "goto":
            mb.goto(label)
            used_labels.add(label)
        elif op == "label" and label not in used_labels:
            pass  # emitted at the end for closure
        elif op == "sload":
            mb.sload(a, "t.A", "g0")
        elif op == "sstore":
            mb.sstore("t.A", "g0", b)
        elif op == "aload":
            mb.aload(a, "obj", nxt(3))
        elif op == "astore":
            mb.astore("obj", nxt(3), b)
        elif op == "call_view":
            mb.call("this", "findViewById", nxt(3), dst=a)
        elif op == "post":
            mb.call("h", "post", "runner")
    # close every referenced label at the tail (forward jumps land here)
    for label in LABELS:
        mb.label(label).nop()
    mb.ret()


def build_fuzz_apk(ops1, ops2, rng_ints):
    pb = ProgramBuilder()
    install_framework(pb.program)
    holder = pb.new_class("t.Holder")
    for f in FIELDS:
        holder.field(f, "java.lang.Object")
    runner = pb.new_class("t.Run", interfaces=("java.lang.Runnable",))
    run = runner.method("run")
    run.ret()
    act = pb.new_class("t.A", superclass="android.app.Activity")
    act.field("g0", "java.lang.Object", is_static=True)
    act.cls.add_field("g0", __import__("repro").ir.OBJECT, is_static=True)
    emit_method(act.method("onCreate"), ops1, rng_ints)
    emit_method(act.method("onHandler"), ops2, rng_ints[::-1] or [0])
    apk = Apk("fuzz", pb.build(), Manifest("t"))
    apk.manifest.add_activity("t.A", layout="m", is_main=True)
    layout = apk.layouts.new_layout("m")
    layout.add_view(1, "android.widget.Button", static_callbacks=(("onClick", "onHandler"),))
    return apk


FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@FUZZ_SETTINGS
@given(
    instruction_ops(),
    instruction_ops(),
    st.lists(st.integers(0, 1000), min_size=40, max_size=40),
)
def test_pipeline_total_on_random_programs(ops1, ops2, rng_ints):
    apk = build_fuzz_apk(ops1, ops2, rng_ints)
    report = validate_program(apk.program)
    assert report.ok, report.errors  # the emitter must produce valid IR
    result = Sierra(SierraOptions()).analyze(apk)
    assert result.report.races_after_refutation <= result.report.racy_pairs


@FUZZ_SETTINGS
@given(
    instruction_ops(),
    instruction_ops(),
    st.lists(st.integers(0, 1000), min_size=40, max_size=40),
    st.integers(0, 3),
)
def test_interpreter_total_on_random_programs(ops1, ops2, rng_ints, seed):
    apk = build_fuzz_apk(ops1, ops2, rng_ints)
    trace = ExecutionDriver(apk, seed=seed, max_events=25).run()
    assert len(trace.events) <= 25
