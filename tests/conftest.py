"""Shared fixtures: figure apps and cached pipeline results.

Pipeline runs are session-scoped — the analyses are deterministic and
read-only once built, so every test file can share one result per app.
"""

from __future__ import annotations

import pytest

from repro.core import Sierra, SierraOptions
from repro.corpus import (
    SynthSpec,
    build_newsreader_app,
    build_opensudoku_app,
    build_quickstart_app,
    build_receiver_app,
    synthesize_app,
)


@pytest.fixture(scope="session")
def quickstart_apk():
    return build_quickstart_app()


@pytest.fixture(scope="session")
def newsreader_apk():
    return build_newsreader_app()


@pytest.fixture(scope="session")
def receiver_apk():
    return build_receiver_app()


@pytest.fixture(scope="session")
def opensudoku_apk():
    return build_opensudoku_app()


@pytest.fixture(scope="session")
def quickstart_result(quickstart_apk):
    return Sierra(SierraOptions()).analyze(quickstart_apk)


@pytest.fixture(scope="session")
def newsreader_result(newsreader_apk):
    return Sierra(SierraOptions()).analyze(newsreader_apk)


@pytest.fixture(scope="session")
def receiver_result(receiver_apk):
    return Sierra(SierraOptions()).analyze(receiver_apk)


@pytest.fixture(scope="session")
def opensudoku_result(opensudoku_apk):
    return Sierra(SierraOptions()).analyze(opensudoku_apk)


@pytest.fixture(scope="session")
def small_synth():
    """A compact synthetic app exercising every idiom once."""
    spec = SynthSpec(
        name="small",
        seed=42,
        activities=2,
        evrace=1,
        bgrace=1,
        guard=1,
        nullguard=1,
        ordered=1,
        factory=1,
        implicit=1,
        receivers=1,
        services=1,
        extra_gui=2,
    )
    return synthesize_app(spec)


@pytest.fixture(scope="session")
def small_synth_result(small_synth):
    apk, _truth = small_synth
    return Sierra(SierraOptions(compare_without_as=True)).analyze(apk)
