"""Action-scoped ICFG and de-facto domination (HB rule 5's engine)."""

from repro.analysis.callgraph import CallGraph, MethodContext
from repro.analysis.icfg import ActionICFG
from repro.android.framework import install_framework
from repro.ir.builder import ProgramBuilder


def build_action():
    """entry() calls helper1() then (conditionally) helper2(); helper1
    contains post site e1, helper2 contains post site e2."""
    pb = ProgramBuilder()
    install_framework(pb.program)
    cls = pb.new_class("t.C")
    h1 = cls.method("helper1")
    e1 = h1.call_static("$post$e1")
    h1.ret()
    h2 = cls.method("helper2")
    e2 = h2.call_static("$post$e2")
    h2.ret()
    entry = cls.method("entry")
    entry.call("this", "helper1")
    entry.const("c", True)
    entry.if_true("c", "skip")
    entry.call("this", "helper2")
    entry.label("skip").ret()
    return pb.program, entry.method, h1.method, h2.method, e1, e2


def make_icfg(program, methods):
    cg = CallGraph()
    mcs = {m: MethodContext(m) for m in methods}
    entry_m = methods[0]
    for instr in entry_m.body:
        from repro.ir.instructions import Invoke, InvokeKind

        if isinstance(instr, Invoke) and instr.kind is InvokeKind.VIRTUAL:
            callee = program.resolve_method("t.C", instr.method_name)
            if callee is not None:
                cg.add_edge(mcs[entry_m], instr, mcs[callee])
    return ActionICFG(cg, mcs.values()), mcs


class TestDeFactoDomination:
    def test_unconditional_callee_site_dominates(self):
        program, entry, h1, h2, e1, e2 = build_action()
        icfg, mcs = make_icfg(program, [entry, h1, h2])
        entries = [mcs[entry]]
        e1_nodes = icfg.sites_of_instruction(e1)
        e2_nodes = icfg.sites_of_instruction(e2)
        # helper1 is called unconditionally before helper2 can run:
        # removing e1 makes e2 unreachable
        assert icfg.de_facto_dominates_all(entries, e1_nodes, e2_nodes)

    def test_conditional_site_does_not_dominate(self):
        program, entry, h1, h2, e1, e2 = build_action()
        icfg, mcs = make_icfg(program, [entry, h1, h2])
        entries = [mcs[entry]]
        e1_nodes = icfg.sites_of_instruction(e1)
        e2_nodes = icfg.sites_of_instruction(e2)
        # e2 (conditional) does not de-facto dominate e1
        assert not icfg.de_facto_dominates_all(entries, e2_nodes, e1_nodes)

    def test_empty_site_lists_do_not_dominate(self):
        program, entry, h1, h2, e1, e2 = build_action()
        icfg, mcs = make_icfg(program, [entry, h1, h2])
        assert not icfg.de_facto_dominates_all([mcs[entry]], [], icfg.sites_of_instruction(e2))

    def test_vacuous_domination_rejected(self):
        """If e2 is unreachable even with e1 present, rule 5 must not fire."""
        pb = ProgramBuilder()
        install_framework(pb.program)
        cls = pb.new_class("t.C")
        m = cls.method("entry")
        e1 = m.call_static("$post$e1")
        m.ret()
        dead = m.method  # e2 lives in a method never called
        other = cls.method("dead")
        e2 = other.call_static("$post$e2")
        other.ret()
        cg = CallGraph()
        mc_entry = MethodContext(m.method)
        mc_dead = MethodContext(other.method)
        cg.add_node(mc_entry)
        cg.add_node(mc_dead)
        icfg = ActionICFG(cg, [mc_entry, mc_dead])
        assert not icfg.de_facto_dominates_all(
            [mc_entry], icfg.sites_of_instruction(e1), icfg.sites_of_instruction(e2)
        )


class TestStructure:
    def test_entry_and_exit_nodes(self):
        program, entry, h1, h2, e1, e2 = build_action()
        icfg, mcs = make_icfg(program, [entry, h1, h2])
        assert icfg.entry_node(mcs[entry]) == (mcs[entry], 0)
        exits = icfg.exit_nodes(mcs[entry])
        assert exits, "entry method must have exit nodes"

    def test_call_and_return_edges(self):
        program, entry, h1, h2, e1, e2 = build_action()
        icfg, mcs = make_icfg(program, [entry, h1, h2])
        call_node = (mcs[entry], 0)  # first instruction is the call
        assert icfg.entry_node(mcs[h1]) in icfg.graph.successors(call_node)

    def test_empty_method_gets_virtual_node(self):
        pb = ProgramBuilder()
        cls = pb.new_class("t.C")
        empty = cls.method("empty").method
        cg = CallGraph()
        mc = MethodContext(empty)
        cg.add_node(mc)
        icfg = ActionICFG(cg, [mc])
        assert icfg.entry_node(mc) == (mc, -1)
        assert icfg.exit_nodes(mc) == [(mc, -1)]
