"""PointsToResult query surface and the synthetic/derived object kinds."""

from repro.analysis import Entry, analyze
from repro.analysis.pointsto import (
    ARRAY_FIELD,
    DerivedObject,
    MAIN_LOOPER,
    SyntheticObject,
    array_field_name,
)
from repro.android import install_framework
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import Const, Var


def small_result():
    pb = ProgramBuilder()
    install_framework(pb.program)
    mb = pb.new_class("t.C").method("m")
    mb.new("a", "t.C")
    mb.new("b", "t.C")
    mb.ret()
    res = analyze(pb.program, [Entry(mb.method)])
    mc = [n for n in res.call_graph.nodes if n.method is mb.method][0]
    return res, mc


class TestResultViews:
    def test_objects_of_class(self):
        res, mc = small_result()
        objs = res.objects_of_class("t.C")
        assert len(objs) == 2

    def test_variable_count(self):
        res, _ = small_result()
        assert res.variable_count() >= 2

    def test_unknown_queries_empty(self):
        res, mc = small_result()
        assert res.var(mc, "ghost") == frozenset()
        assert res.static("no.Cls", "f") == frozenset()
        first = next(iter(res.var(mc, "a")))
        assert res.field(first, "nofield") == frozenset()


class TestObjectKinds:
    def test_synthetic_repr(self):
        assert repr(MAIN_LOOPER) == "<main_looper>"
        assert MAIN_LOOPER == SyntheticObject("main_looper", "android.os.Looper")

    def test_derived_identity(self):
        base = SyntheticObject("x", "t.C")
        d1 = DerivedObject(base, "looper", "android.os.Looper")
        d2 = DerivedObject(base, "looper", "android.os.Looper")
        assert d1 == d2
        assert "looper" in repr(d1)


class TestArrayFieldNaming:
    def test_insensitive_always_summary(self):
        assert array_field_name(Const(3), False) == ARRAY_FIELD
        assert array_field_name(Var("i"), False) == ARRAY_FIELD

    def test_sensitive_constant_refined(self):
        assert array_field_name(Const(3), True) == "$elem[3]"

    def test_sensitive_variable_falls_back(self):
        assert array_field_name(Var("i"), True) == ARRAY_FIELD

    def test_sensitive_non_int_constant_falls_back(self):
        assert array_field_name(Const("key"), True) == ARRAY_FIELD
        assert array_field_name(Const(True), True) == ARRAY_FIELD
