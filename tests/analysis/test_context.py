"""Context abstractions: truncation, action pinning, selector factory."""

import pytest

from repro.analysis.context import (
    AbstractObject,
    ActionSensitiveSelector,
    AllocSiteElement,
    CallSiteElement,
    Context,
    EMPTY_CONTEXT,
    HybridSelector,
    InsensitiveSelector,
    KCfaSelector,
    KObjSelector,
    ViewObject,
    make_selector,
)


def cs(i):
    return CallSiteElement("m", i)


def alloc(i):
    return AllocSiteElement("m", i)


def obj(i, ctx=EMPTY_CONTEXT):
    return AbstractObject("a.C", alloc(i), ctx)


class TestContext:
    def test_with_action(self):
        ctx = EMPTY_CONTEXT.with_action(7)
        assert ctx.action_id() == 7
        assert EMPTY_CONTEXT.action_id() is None

    def test_equality_includes_action(self):
        assert EMPTY_CONTEXT.with_action(1) != EMPTY_CONTEXT.with_action(2)
        assert EMPTY_CONTEXT.with_action(1) == EMPTY_CONTEXT.with_action(1)


class TestKCfa:
    def test_appends_and_truncates(self):
        sel = KCfaSelector(k=2)
        ctx = EMPTY_CONTEXT
        for i in range(3):
            ctx = sel.static_callee_context(ctx, cs(i))
        assert ctx.elements == (cs(1), cs(2))

    def test_virtual_same_as_static(self):
        sel = KCfaSelector(k=1)
        ctx = sel.virtual_callee_context(EMPTY_CONTEXT, cs(5), obj(0))
        assert ctx.elements == (cs(5),)


class TestKObj:
    def test_uses_receiver_alloc_chain(self):
        sel = KObjSelector(k=2)
        receiver = obj(3, Context(elements=(alloc(1),)))
        ctx = sel.virtual_callee_context(EMPTY_CONTEXT, cs(0), receiver)
        assert ctx.elements == (alloc(1), alloc(3))

    def test_view_receiver_falls_back_to_caller(self):
        sel = KObjSelector(k=2)
        caller = Context(elements=(cs(9),))
        ctx = sel.virtual_callee_context(caller, cs(0), ViewObject(4, "a.V"))
        assert ctx.elements == (cs(9),)

    def test_merging_beyond_k(self):
        """The §3.3 precision-loss scenario: deep chains merge."""
        sel = KObjSelector(k=1)
        r1 = obj(5, Context(elements=(alloc(1),)))
        r2 = obj(5, Context(elements=(alloc(2),)))
        c1 = sel.virtual_callee_context(EMPTY_CONTEXT, cs(0), r1)
        c2 = sel.virtual_callee_context(EMPTY_CONTEXT, cs(0), r2)
        assert c1 == c2  # merged despite different histories


class TestActionSensitivity:
    def test_action_survives_truncation(self):
        sel = ActionSensitiveSelector(k=1)
        ctx = EMPTY_CONTEXT.with_action(3)
        for i in range(5):
            ctx = sel.static_callee_context(ctx, cs(i))
        assert ctx.action_id() == 3
        assert len(ctx.elements) == 1

    def test_heap_context_carries_action(self):
        sel = ActionSensitiveSelector(k=2)
        ctx = EMPTY_CONTEXT.with_action(9)
        heap = sel.heap_context(ctx, alloc(0))
        assert heap.action_id() == 9

    def test_objects_from_different_actions_differ(self):
        """The foo()/bar() example: same code, different actions, distinct
        abstract objects."""
        sel = ActionSensitiveSelector(k=1)
        ctxs = []
        for action in (1, 2):
            ctx = EMPTY_CONTEXT.with_action(action)
            for i in range(4):  # deeper than k
                ctx = sel.static_callee_context(ctx, cs(i))
            ctxs.append(sel.heap_context(ctx, alloc(7)))
        assert ctxs[0] != ctxs[1]

    def test_hybrid_without_action_merges_same_scenario(self):
        sel = HybridSelector(k=1)
        ctxs = []
        for _ in (1, 2):
            ctx = EMPTY_CONTEXT
            for i in range(4):
                ctx = sel.static_callee_context(ctx, cs(i))
            ctxs.append(sel.heap_context(ctx, alloc(7)))
        assert ctxs[0] == ctxs[1]

    def test_entry_context(self):
        assert ActionSensitiveSelector().entry_context(4).action_id() == 4
        assert HybridSelector().entry_context(4).action_id() is None
        assert ActionSensitiveSelector().entry_context(None) == EMPTY_CONTEXT


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("insensitive", InsensitiveSelector),
            ("kcfa", KCfaSelector),
            ("kobj", KObjSelector),
            ("hybrid", HybridSelector),
            ("action", ActionSensitiveSelector),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_selector(name), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown selector"):
            make_selector("bogus")

    def test_uses_actions_only_for_action_selector(self):
        assert make_selector("action").uses_actions()
        assert not make_selector("hybrid").uses_actions()


class TestViewObject:
    def test_identity_by_id(self):
        assert ViewObject(7, "a.V") == ViewObject(7, "a.V")
        assert ViewObject(7, "a.V") != ViewObject(8, "a.V")

    def test_class_name_property(self):
        assert ViewObject(7, "a.V").class_name == "a.V"
