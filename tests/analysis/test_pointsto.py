"""Pointer analysis: dataflow, dispatch, framework intercepts, markers."""

import pytest

from repro.analysis.callgraph import MethodContext
from repro.analysis.context import ActionSensitiveSelector, ViewObject
from repro.analysis.pointsto import (
    ARRAY_FIELD,
    Entry,
    EventDispatch,
    MAIN_LOOPER,
    PointerAnalysis,
    analyze,
)
from repro.android.framework import install_framework
from repro.android.layout import LayoutRegistry
from repro.ir.builder import ProgramBuilder
from repro.ir.types import OBJECT


def fresh():
    pb = ProgramBuilder()
    install_framework(pb.program)
    return pb


def mc_of(result, method):
    nodes = [mc for mc in result.call_graph.nodes if mc.method is method]
    assert nodes, f"{method} not reachable"
    return nodes[0]


class TestCoreDataflow:
    def test_allocation_and_copy(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.new("a", "t.C")
        mb.move("b", "a")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        assert res.var(mc, "a") == res.var(mc, "b")
        assert len(res.var(mc, "a")) == 1

    def test_field_store_load_roundtrip(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.new("o", "t.C")
        mb.new("v", "java.lang.Object")
        mb.store("o", "f", "v")
        mb.load("w", "o", "f")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        assert res.var(mc, "w") == res.var(mc, "v")

    def test_static_roundtrip(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.new("v", "java.lang.Object")
        mb.sstore("t.C", "g", "v")
        mb.sload("w", "t.C", "g")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        assert res.var(mc, "w") == res.static("t.C", "g")

    def test_array_is_index_insensitive(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.new("arr", "java.lang.Object")
        mb.new("v1", "t.C")
        mb.astore("arr", 0, "v1")
        mb.aload("w", "arr", 5)  # different index, same cell
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        assert res.var(mc, "w") == res.var(mc, "v1")
        (arr_obj,) = res.var(mc, "arr")
        assert res.field(arr_obj, ARRAY_FIELD) == res.var(mc, "v1")

    def test_constants_carry_no_objects(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.const("x", 3)
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        assert res.var(mc_of(res, mb.method), "x") == frozenset()


class TestCalls:
    def test_virtual_dispatch_through_hierarchy(self):
        pb = fresh()
        base = pb.new_class("t.Base")
        base.method("who").ret()
        sub = pb.new_class("t.Sub", superclass="t.Base")
        sm = sub.method("who")
        sm.new("marker", "t.Sub")
        sm.ret()
        caller = pb.new_class("t.Main").method("m")
        caller.new("o", "t.Sub")
        caller.call("o", "who")
        caller.ret()
        res = analyze(pb.program, [Entry(caller.method)])
        callee_methods = {e.callee.method.signature for e in res.call_graph.edges()}
        assert "t.Sub.who" in callee_methods
        assert "t.Base.who" not in callee_methods

    def test_argument_and_return_binding(self):
        pb = fresh()
        helper = pb.new_class("t.H")
        hm = helper.method("id", params=[("x", OBJECT)])
        hm.ret("x")
        caller = pb.new_class("t.Main").method("m")
        caller.new("h", "t.H")
        caller.new("v", "java.lang.Object")
        caller.call("h", "id", "v", dst="r")
        caller.ret()
        res = analyze(pb.program, [Entry(caller.method)])
        mc = mc_of(res, caller.method)
        assert res.var(mc, "r") == res.var(mc, "v")

    def test_this_binding_is_per_receiver(self):
        pb = fresh()
        cls = pb.new_class("t.C")
        getter = cls.method("self")
        getter.ret("this")
        caller = pb.new_class("t.Main").method("m")
        caller.new("a", "t.C")
        caller.call("a", "self", dst="ra")
        caller.ret()
        res = analyze(pb.program, [Entry(caller.method)])
        mc = mc_of(res, caller.method)
        assert res.var(mc, "ra") == res.var(mc, "a")

    def test_framework_empty_bodies_not_expanded(self):
        pb = fresh()
        caller = pb.new_class("t.Main").method("m")
        caller.new("o", "java.lang.Object")
        caller.ret()
        res = analyze(pb.program, [Entry(caller.method)])
        assert len(res.call_graph) == 1  # only the entry


class TestIntercepts:
    def test_find_view_by_id_uses_layout(self):
        pb = fresh()
        layouts = LayoutRegistry()
        layouts.new_layout("main").add_view(7, "android.widget.Button")
        act = pb.new_class("t.A", superclass="android.app.Activity")
        mb = act.method("onCreate")
        mb.call("this", "findViewById", 7, dst="v")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)], layouts=layouts)
        mc = mc_of(res, mb.method)
        assert res.var(mc, "v") == frozenset({ViewObject(7, "android.widget.Button")})

    def test_find_view_by_id_aliases_across_methods(self):
        """InflatedViewContext: same constant id ⇒ same abstract view."""
        pb = fresh()
        act = pb.new_class("t.A", superclass="android.app.Activity")
        m1 = act.method("onCreate")
        m1.call("this", "findViewById", 7, dst="v")
        m1.ret()
        m2 = act.method("onResume")
        m2.call("this", "findViewById", 7, dst="w")
        m2.ret()
        res = analyze(pb.program, [Entry(m1.method), Entry(m2.method)])
        assert res.var(mc_of(res, m1.method), "v") == res.var(mc_of(res, m2.method), "w")

    def test_main_looper_singleton(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.call_static("android.os.Looper.getMainLooper", dst="lp")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        assert res.var(mc_of(res, mb.method), "lp") == frozenset({MAIN_LOOPER})

    def test_handler_ctor_binds_looper(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.call_static("android.os.Looper.getMainLooper", dst="lp")
        mb.new("h", "android.os.Handler")
        mb.call_special("h", "android.os.Handler.<init>", "lp")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        (handler,) = res.var(mc, "h")
        assert MAIN_LOOPER in res.field(handler, "looper")

    def test_thread_ctor_binds_target(self):
        pb = fresh()
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        rm = r.method("run")
        rm.ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("r", "t.R")
        mb.new("t", "java.lang.Thread")
        mb.call_special("t", "java.lang.Thread.<init>", "r")
        mb.call("t", "start")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        edges = [e for e in res.call_graph.edges() if e.via == "thread"]
        assert any(e.callee.method.signature == "t.R.run" for e in edges)

    def test_message_obtain_per_site(self):
        pb = fresh()
        mb = pb.new_class("t.C").method("m")
        mb.call_static("android.os.Message.obtain", dst="m1")
        mb.call_static("android.os.Message.obtain", dst="m2")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        mc = mc_of(res, mb.method)
        assert res.var(mc, "m1") != res.var(mc, "m2")


class TestConcurrencyLinking:
    def test_handler_post_links_run(self):
        pb = fresh()
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        r.method("run").ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("h", "android.os.Handler")
        mb.new("r", "t.R")
        mb.call("h", "post", "r")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        assert any(
            e.via == "post" and e.callee.method.signature == "t.R.run"
            for e in res.call_graph.edges()
        )

    def test_send_message_links_handle_message(self):
        pb = fresh()
        h = pb.new_class("t.H", superclass="android.os.Handler")
        hm = h.method("handleMessage", params=[("msg", OBJECT)])
        hm.ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("h", "t.H")
        mb.call_static("android.os.Message.obtain", dst="msg")
        mb.call("h", "sendMessage", "msg")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        post_edges = [e for e in res.call_graph.edges() if e.via == "post"]
        assert any(e.callee.method.signature == "t.H.handleMessage" for e in post_edges)
        # the message's target handler is recorded for affinity resolution
        mc = mc_of(res, mb.method)
        (msg,) = res.var(mc, "msg")
        assert res.field(msg, "target") == res.var(mc, "h")

    def test_async_task_stage_linking_and_ret_binding(self):
        pb = fresh()
        t = pb.new_class("t.T", superclass="android.os.AsyncTask")
        bg = t.method("doInBackground")
        bg.new("data", "java.lang.Object")
        bg.ret("data")
        pe = t.method("onPostExecute", params=[("result", OBJECT)])
        pe.ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("t", "t.T")
        mb.call("t", "execute")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        vias = {e.via for e in res.call_graph.edges()}
        assert "task" in vias and "post" in vias
        pe_mc = mc_of(res, pe.method)
        assert len(res.var(pe_mc, "result")) == 1  # fed from bg's return

    def test_executor_links_runnable(self):
        pb = fresh()
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        r.method("run").ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("ex", "java.util.concurrent.ThreadPoolExecutor")
        mb.new("r", "t.R")
        mb.call("ex", "execute", "r")
        mb.ret()
        res = analyze(pb.program, [Entry(mb.method)])
        assert any(
            e.via == "thread" and e.callee.method.signature == "t.R.run"
            for e in res.call_graph.edges()
        )


class TestMarkers:
    def test_event_dispatch_resolves_via_registration_pts(self):
        pb = fresh()
        listener = pb.new_class("t.L", interfaces=("android.view.View.OnClickListener",))
        lm = listener.method("onClick", params=[("v", OBJECT)])
        lm.ret()
        act = pb.new_class("t.A", superclass="android.app.Activity")
        oc = act.method("onCreate")
        oc.call("this", "findViewById", 3, dst="btn")
        oc.new("l", "t.L")
        reg_site = oc.call("btn", "setOnClickListener", "l")
        oc.ret()
        harness = pb.new_class("t.Harness").method("main", is_static=True)
        harness.new("a", "t.A")
        harness.call("a", "onCreate")
        harness.call_static("$event$0")
        harness.ret()
        dispatch = EventDispatch(
            reg_method=oc.method,
            reg_site=reg_site,
            arg_index=0,
            callback_methods=("onClick",),
            bind_receiver_to_first_param=True,
        )
        res = PointerAnalysis(
            pb.program,
            [Entry(harness.method)],
            dispatch_table={"$event$0": dispatch},
        ).solve()
        event_edges = [e for e in res.call_graph.edges() if e.via == "event"]
        assert any(e.callee.method.signature == "t.L.onClick" for e in event_edges)
        lm_mc = mc_of(res, lm.method)
        # the registered view is bound to the callback's first parameter
        assert len(res.var(lm_mc, "v")) == 1


class TestActionResolver:
    def test_resolver_pins_action_contexts(self):
        pb = fresh()
        r = pb.new_class("t.R", interfaces=("java.lang.Runnable",))
        r.method("run").ret()
        mb = pb.new_class("t.C").method("m")
        mb.new("h", "android.os.Handler")
        mb.new("r", "t.R")
        post_site = mb.call("h", "post", "r")
        mb.ret()

        run_method = pb.program.resolve_method("t.R", "run")

        def resolver(caller_mc, site, callee):
            if site is post_site and callee is run_method:
                return 42
            return None

        res = PointerAnalysis(
            pb.program,
            [Entry(mb.method, 1)],
            selector=ActionSensitiveSelector(),
            action_resolver=resolver,
        ).solve()
        run_mcs = [mc for mc in res.call_graph.nodes if mc.method is run_method]
        assert run_mcs and run_mcs[0].action_id() == 42
