"""Call graph structure and in-action (synchronous-only) reachability."""

from repro.analysis.callgraph import CallGraph, MethodContext
from repro.ir.instructions import Invoke, InvokeKind
from repro.ir.program import Method


def node(name):
    return MethodContext(Method("t.C", name))


def site(name="callee"):
    return Invoke(None, InvokeKind.VIRTUAL, name, None)


class TestStructure:
    def test_add_node_and_entry(self):
        cg = CallGraph()
        n = node("m")
        assert cg.add_node(n)
        assert not cg.add_node(n)
        cg.add_entry(n)
        cg.add_entry(n)
        assert cg.entries == [n]

    def test_edges_deduped_by_site_and_via(self):
        cg = CallGraph()
        a, b = node("a"), node("b")
        s = site()
        assert cg.add_edge(a, s, b)
        assert not cg.add_edge(a, s, b)
        assert cg.add_edge(a, s, b, via="post")  # different via: new edge
        assert cg.edge_count() == 2

    def test_callees_at_filters_by_site(self):
        cg = CallGraph()
        a, b, c = node("a"), node("b"), node("c")
        s1, s2 = site("x"), site("y")
        cg.add_edge(a, s1, b)
        cg.add_edge(a, s2, c)
        assert cg.callees_at(a, s1) == [b]
        assert cg.callees_at(a, s2) == [c]

    def test_callers_and_in_edges(self):
        cg = CallGraph()
        a, b = node("a"), node("b")
        cg.add_edge(a, site(), b)
        assert cg.callers(b) == [a]
        assert cg.in_edges(b)[0].caller is a

    def test_contexts_of(self):
        cg = CallGraph()
        m = Method("t.C", "m")
        from repro.analysis.context import EMPTY_CONTEXT

        mc1 = MethodContext(m, EMPTY_CONTEXT.with_action(1))
        mc2 = MethodContext(m, EMPTY_CONTEXT.with_action(2))
        cg.add_node(mc1)
        cg.add_node(mc2)
        assert set(cg.contexts_of(m)) == {mc1, mc2}


class TestReachability:
    def build(self):
        cg = CallGraph()
        a, b, c, d = node("a"), node("b"), node("c"), node("d")
        cg.add_edge(a, site(), b)  # synchronous
        cg.add_edge(b, site(), c, via="post")  # async boundary
        cg.add_edge(b, site(), d)  # synchronous
        return cg, a, b, c, d

    def test_full_reachability_crosses_posts(self):
        cg, a, b, c, d = self.build()
        assert set(cg.reachable_from([a])) == {a, b, c, d}

    def test_synchronous_only_stops_at_posts(self):
        cg, a, b, c, d = self.build()
        assert set(cg.reachable_from([a], synchronous_only=True)) == {a, b, d}

    def test_stop_set_blocks_entry(self):
        cg, a, b, c, d = self.build()
        assert set(cg.reachable_from([a], stop={b})) == {a}

    def test_roots_always_included(self):
        cg, a, b, c, d = self.build()
        assert set(cg.reachable_from([c], stop={c})) == {c}
