"""On-demand constant propagation for Message fields (§5)."""

from repro.analysis.constprop import constant_message_fields, constant_registers
from repro.android.framework import install_framework
from repro.ir.builder import ProgramBuilder


def sender(emit):
    pb = ProgramBuilder()
    install_framework(pb.program)
    mb = pb.new_class("t.C").method("send")
    send_site = emit(mb)
    mb.ret()
    return mb.method, send_site


class TestMessageConstants:
    def test_direct_constant_store(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.store("msg", "what", 3)
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {"what": 3}

    def test_constant_through_register(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.const("w", 7)
            mb.store("msg", "what", "w")
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {"what": 7}

    def test_conflicting_stores_not_constant(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.store("msg", "what", 1)
            mb.store("msg", "what", 2)
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert "what" not in constant_message_fields(method, site)

    def test_alias_tracked(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.move("alias", "msg")
            mb.store("alias", "what", 9)
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {"what": 9}

    def test_send_empty_message(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            return mb.call("h", "sendEmptyMessage", 4)

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {"what": 4}

    def test_non_constant_source_ignored(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.call_static("$nondet$", dst="w")
            mb.store("msg", "what", "w")
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {}

    def test_stores_to_other_objects_ignored(self):
        def emit(mb):
            mb.new("h", "android.os.Handler")
            mb.call_static("android.os.Message.obtain", dst="msg")
            mb.call_static("android.os.Message.obtain", dst="other")
            mb.store("other", "what", 5)
            mb.store("msg", "what", 1)
            return mb.call("h", "sendMessage", "msg")

        method, site = sender(emit)
        assert constant_message_fields(method, site) == {"what": 1}


class TestConstantRegisters:
    def test_single_constant(self):
        pb = ProgramBuilder()
        mb = pb.new_class("t.C").method("m")
        mb.const("x", 5)
        mb.const("y", 1)
        mb.move("y", "x")  # y reassigned: not constant
        mb.ret()
        consts = constant_registers(mb.method)
        assert consts.get("x") == 5
        assert "y" not in consts
