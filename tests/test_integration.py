"""Cross-module invariants, checked over randomized synthetic apps.

These are the properties that make the pipeline *a race detector* rather
than an arbitrary report generator:

* the SHBG is a strict partial order (acyclic, transitive);
* every racy pair is SHBG-unordered, conflicting, and cross-action;
* refutation only ever removes candidates;
* action sensitivity never reports more pairs than weaker abstractions on
  factory-style workloads;
* ground-truth refutable/ordered idioms never survive.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Sierra, SierraOptions
from repro.corpus import ELIMINATED_CATEGORIES, SynthSpec, classify_field, synthesize_app
from repro.dynamic import run_eventracer


@st.composite
def small_specs(draw):
    return SynthSpec(
        name="prop",
        seed=draw(st.integers(0, 10_000)),
        activities=draw(st.integers(1, 3)),
        evrace=draw(st.integers(0, 2)),
        bgrace=draw(st.integers(0, 2)),
        guard=draw(st.integers(0, 2)),
        nullguard=draw(st.integers(0, 1)),
        ordered=draw(st.integers(0, 2)),
        factory=draw(st.integers(0, 2)),
        implicit=draw(st.integers(0, 1)),
        receivers=draw(st.integers(0, 1)),
        services=draw(st.integers(0, 1)),
        extra_gui=draw(st.integers(0, 2)),
    )


PROP_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@PROP_SETTINGS
@given(small_specs())
def test_pipeline_invariants(spec):
    apk, truth = synthesize_app(spec)
    assert apk.validate().ok
    result = Sierra(SierraOptions()).analyze(apk)
    shbg = result.shbg

    # partial order
    assert not shbg.closure.has_cycle()

    # racy pairs are unordered, cross-action, conflicting
    for pair in result.racy_pairs:
        a1, a2 = pair.actions
        assert a1 != a2
        assert not shbg.comparable(a1, a2)
        assert pair.access1.is_write or pair.access2.is_write
        assert pair.location in pair.access1.locations
        assert pair.location in pair.access2.locations

    # refutation is a filter
    surviving_keys = {(p.actions, p.location) for p in result.surviving}
    candidate_keys = {(p.actions, p.location) for p in result.racy_pairs}
    assert surviving_keys <= candidate_keys

    # eliminated ground-truth categories never survive
    for pair in result.surviving:
        category = classify_field(pair.field_name)
        assert category not in ELIMINATED_CATEGORIES, (pair.field_name, category)

    # reports are exactly the survivors, ranked
    assert len(result.report.reports) == len(result.surviving)
    ranks = [r.rank for r in result.report.reports]
    assert ranks == sorted(ranks)


@PROP_SETTINGS
@given(small_specs())
def test_action_sensitivity_never_worse(spec):
    apk, _ = synthesize_app(spec)
    with_as = Sierra(SierraOptions(selector="action", refute=False)).analyze(apk)
    without = Sierra(SierraOptions(selector="hybrid", refute=False)).analyze(apk)
    assert with_as.report.racy_pairs <= without.report.racy_pairs


@PROP_SETTINGS
@given(small_specs(), st.integers(0, 3))
def test_dynamic_races_are_subset_of_shared_memory(spec, seed):
    """Every dynamic race is on memory at least two events touched; the
    detector never invents accesses."""
    apk, _ = synthesize_app(spec)
    report = run_eventracer(apk, schedules=1, max_events=25, seed=seed)
    for race in report.races:
        assert race.field_name
        assert race.kind in ("event", "data")


def test_static_dominates_dynamic_on_every_figure_app(
    quickstart_apk, newsreader_apk, receiver_apk, opensudoku_apk
):
    """§6.4's headline inequality on the hand-built apps: SIERRA's true-race
    fields are a superset of what a bounded dynamic run observes."""
    for apk in (quickstart_apk, newsreader_apk, receiver_apk, opensudoku_apk):
        static = Sierra(SierraOptions()).analyze(apk)
        dynamic = run_eventracer(apk, schedules=2, max_events=25)
        static_fields = {p.field_name for p in static.surviving}
        for race in dynamic.races:
            if race.field_name in static_fields:
                continue
            # the one legitimate exception: two *instances of the same
            # callback* racing — SIERRA's static abstraction reifies them as
            # one action and cannot express a self-race
            assert len(race.labels) == 1, race.describe()
