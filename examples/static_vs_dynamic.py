#!/usr/bin/env python3
"""SIERRA vs an EventRacer-style dynamic detector (§6.4's comparison).

Generates a synthetic app with ground-truth race labels, runs both
detectors, and scores them: the static detector sees every schedule at
once; the dynamic detector only what its explored schedules execute — and
it cannot see through pointer guards (its main false-positive source).

Run:  python examples/static_vs_dynamic.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import SynthSpec, classify_report_field, synthesize_app
from repro.dynamic import run_eventracer


def main() -> None:
    spec = SynthSpec(
        name="comparison-app",
        seed=2024,
        activities=4,
        evrace=3,
        bgrace=2,
        guard=2,
        nullguard=1,
        ordered=2,
        factory=2,
        implicit=1,
        receivers=1,
        services=1,
        extra_gui=4,
    )
    apk, truth = synthesize_app(spec)
    print(f"app: {apk.name} — seeded ground truth: {truth.seeded}")

    static = Sierra(SierraOptions()).analyze(apk)
    static_true = sum(
        1
        for r in static.report.reports
        if classify_report_field(r.field_name) == "true"
    )
    print(f"\nSIERRA    : {static.report.races_after_refutation} reports "
          f"({static_true} true, "
          f"{static.report.races_after_refutation - static_true} FP by ground truth)")

    for schedules, events in ((1, 20), (3, 40), (8, 80)):
        dynamic = run_eventracer(apk, schedules=schedules, max_events=events)
        true_fields = sum(
            1
            for race in dynamic.races
            if classify_report_field(race.field_name) == "true"
        )
        print(f"EventRacer: {dynamic.race_count} reports with "
              f"{schedules} schedules x {events} events "
              f"({true_fields} on true-race fields, "
              f"{dynamic.pointer_guarded_count()} pointer-guard FP-risk, "
              f"{dynamic.filtered_by_coverage} filtered by race coverage)")

    dynamic = run_eventracer(apk, schedules=3, max_events=40)
    assert static_true > dynamic.distinct_field_count(), (
        "the static detector must find more true races than the bounded "
        "dynamic exploration"
    )
    print("\nOK: the precise static approach dominates the dynamic baseline, "
          "as in the paper (29.5 vs 4 true races per app).")


if __name__ == "__main__":
    main()
