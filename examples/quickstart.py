#!/usr/bin/env python3
"""Quickstart: build a tiny app, run SIERRA, read the race report.

Run:  python examples/quickstart.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import build_quickstart_app


def main() -> None:
    # 1. An app: one activity, a counter field, two button handlers.
    apk = build_quickstart_app()
    print(f"app: {apk.name}  ({apk.stats()})")

    # 2. Run the full static pipeline: harness generation, action-sensitive
    #    points-to, Static Happens-Before Graph, racy pairs, refutation.
    result = Sierra(SierraOptions(compare_without_as=True)).analyze(apk)
    report = result.report

    print(f"\nharnesses generated : {report.harnesses}")
    print(f"actions (SHBG nodes): {report.actions}")
    print(f"HB edges (closure)  : {report.hb_edges} "
          f"({report.ordered_fraction:.0%} of all pairs ordered)")
    print(f"racy pairs w/o AS   : {report.racy_pairs_no_as}")
    print(f"racy pairs with AS  : {report.racy_pairs}")
    print(f"after refutation    : {report.races_after_refutation}")

    # 3. Ranked race reports.
    print("\nrace reports:")
    for race in report.reports:
        print(f"  {race.describe()}")

    # 4. Everything the detector derived is inspectable.
    print("\nactions:")
    for action in result.extraction.actions:
        print(f"  {action.describe()}")

    assert report.races_after_refutation == 1, "quickstart seeds exactly one race"
    print("\nOK: the increment/reset counter race was found.")


if __name__ == "__main__":
    main()
