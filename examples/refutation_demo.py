#!/usr/bin/env python3
"""Figure 8: how backward symbolic execution refutes a guard-flag candidate.

OpenSudoku's timer posts a runnable that updates ``mAccumTime`` only while
``mIsRunning`` is true; the onPause stop path clears the flag *before* its
own ``mAccumTime`` write. Both writes look racy to the happens-before stage,
but the refuter walks backward from the runnable's write, collects the
``mIsRunning == true`` path constraint, and finds the ``mIsRunning = false``
strong update in the stop path — contradiction, candidate refuted.

Run:  python examples/refutation_demo.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import build_opensudoku_app


def main() -> None:
    apk = build_opensudoku_app()
    result = Sierra(SierraOptions()).analyze(apk)
    actions = {a.id: a for a in result.extraction.actions}

    surviving = {(p.actions, p.location) for p in result.surviving}

    print("=== candidate races and refutation outcomes ===")
    for pair in result.racy_pairs:
        a1, a2 = (actions[i] for i in pair.actions)
        verdict = "RACE" if (pair.actions, pair.location) in surviving else "refuted"
        print(f"  {pair.field_name:12s} {a1.label:22s} vs {a2.label:22s} -> {verdict}")

    stats = result.report.refutation_stats
    print(f"\nrefutation: {stats['refuted']} of {stats['candidates']} candidates "
          f"eliminated ({stats['nodes_expanded']} symbolic nodes explored)")

    # the paper's exact claims:
    cross_pairs = [
        p
        for p in result.racy_pairs
        if p.field_name == "mAccumTime"
        and {actions[p.actions[0]].callback, actions[p.actions[1]].callback}
        == {"run", "onPause"}
    ]
    assert cross_pairs and all(
        (p.actions, p.location) not in surviving for p in cross_pairs
    ), "the Figure 8 mAccumTime candidate must be refuted"

    guard = [r for r in result.report.reports if r.field_name == "mIsRunning"]
    assert guard and all(r.benign_guard for r in guard)
    print("\nOK: mAccumTime (run vs onPause) refuted; mIsRunning survives as a "
          "true-but-benign guard-variable race (§6.5).")


if __name__ == "__main__":
    main()
