#!/usr/bin/env python3
"""Figure 1's intra-component race, end to end.

A NewsActivity wires a RecycleView to an adapter; clicking starts a
LoaderTask (AsyncTask) whose background stage updates the adapter while the
user can scroll — the AOSP bug the paper opens with. This example builds the
app, shows the derived actions and HB edges, and prints the detector's
findings, then contrasts them with a short dynamic (EventRacer-style) run.

Run:  python examples/intra_component_race.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import build_newsreader_app
from repro.dynamic import run_eventracer


def main() -> None:
    apk = build_newsreader_app()
    result = Sierra(SierraOptions()).analyze(apk)

    print("=== actions (SHBG nodes) ===")
    for action in result.extraction.actions:
        print(f"  {action.describe()}")

    print("\n=== direct HB edges, by rule ===")
    actions = {a.id: a for a in result.extraction.actions}
    for edge in result.shbg.direct_edges:
        print(f"  {actions[edge.src].label} ≺ {actions[edge.dst].label}   [{edge.rule}]")

    print("\n=== races (after refutation) ===")
    for race in result.report.reports:
        print(f"  {race.describe()}")

    fields = {p.field_name for p in result.surviving}
    assert "data" in fields, "background adapter update vs scroll"
    assert "cachedCount" in fields, "notifyDataSetChanged vs scroll"

    # the same app under a short dynamic exploration: schedule-dependent
    print("\n=== dynamic baseline (EventRacer-style) ===")
    for schedules in (1, 5):
        report = run_eventracer(apk, schedules=schedules, max_events=30)
        print(
            f"  {schedules} schedule(s): {report.distinct_field_count()} racy "
            f"fields observed (static found {len(fields)})"
        )

    print("\nOK: Figure 1's race is reported statically, unconditionally.")


if __name__ == "__main__":
    main()
