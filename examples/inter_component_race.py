#!/usr/bin/env python3
"""Figure 2's inter-component race: Activity lifecycle vs BroadcastReceiver.

The activity opens a database in onStart and closes it in onStop; a
runtime-registered receiver updates the database whenever a broadcast
arrives. A broadcast delivered while the activity is stopped hits a closed
database — the race SIERRA reports on ``isOpen`` — and after onDestroy the
``mDB`` pointer itself is nulled (an NPE-risk pointer race).

Run:  python examples/inter_component_race.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import build_receiver_app


def main() -> None:
    apk = build_receiver_app()
    result = Sierra(SierraOptions()).analyze(apk)
    actions = {a.id: a for a in result.extraction.actions}

    print("=== actions ===")
    for action in result.extraction.actions:
        print(f"  {action.describe()}")

    create = next(a for a in result.extraction.actions if a.callback == "onCreate")
    receive = next(a for a in result.extraction.actions if a.callback == "onReceive")
    stop = next(a for a in result.extraction.actions if a.callback == "onStop")

    print("\n=== orderings the rules derive ===")
    print(f"  onCreate ≺ onReceive (rule 1, registration): "
          f"{result.shbg.ordered(create.id, receive.id)}")
    print(f"  onReceive vs onStop unordered (the race window): "
          f"{not result.shbg.comparable(receive.id, stop.id)}")

    print("\n=== races ===")
    for race in result.report.reports:
        a1, a2 = (actions[i] for i in race.pair.actions)
        print(f"  {race.field_name:8s} {race.kind}-race  {a1.label} <-> {a2.label}"
              + ("   [NPE risk]" if race.pointer_race else ""))

    fields = {p.field_name for p in result.surviving}
    assert {"isOpen", "mDB"} <= fields
    print("\nOK: both Figure 2 races (closed-database update and nulled "
          "pointer) are reported.")


if __name__ == "__main__":
    main()
