#!/usr/bin/env python3
"""Combining static detection with replay verification (§6.4's proposal).

SIERRA over-approximates actual races; the paper suggests verifying its
candidates with deterministic replay. This example runs the static detector
on a synthetic app, then replays schedules hunting for each surviving race's
two orders, classifying races as *harmful* (orders diverge: different final
state or one order crashes) or *benign* (orders commute) — echoing §6.5's
finding that most true races are benign guard idioms.

Run:  python examples/replay_verification.py
"""

from repro import Sierra, SierraOptions
from repro.corpus import SynthSpec, synthesize_app
from repro.dynamic import verify_candidates


def main() -> None:
    spec = SynthSpec(
        name="replay-demo",
        seed=7,
        activities=2,
        evrace=2,
        bgrace=1,
        guard=2,
        nullguard=1,
        ordered=1,
        factory=0,
        implicit=0,
        receivers=1,
        services=0,
        extra_gui=1,
    )
    apk, _truth = synthesize_app(spec)

    static = Sierra(SierraOptions()).analyze(apk)
    print(f"static reports: {static.report.races_after_refutation}")

    report = verify_candidates(apk, static, schedules=40, max_events=80)
    for verdict in report.verdicts:
        line = f"  {verdict.describe()}"
        if verdict.order_ab and verdict.order_ba:
            line += (
                f"  [A→B leaves {verdict.order_ab.final_value!r}, "
                f"B→A leaves {verdict.order_ba.final_value!r}]"
            )
        print(line)

    counts = report.counts()
    print(f"\nverified: {counts['harmful']} harmful, {counts['benign']} benign, "
          f"{counts['unconfirmed']} unconfirmed (coverage-limited)")
    assert counts["harmful"] >= 1, "the unguarded event races are lost updates"
    print("\nOK: static candidates triaged by replay, as §6.4 proposes.")


if __name__ == "__main__":
    main()
